// Fused transformer hot-path ops: shape checking and autograd wiring only —
// the dense loops live in tensor/kernels/fused.*. Each op keeps its
// composed fallback (the exact sequence it replaced) behind
// fusion::Enabled() for A/B timing and numerical bisection.

#include "tensor/ops_fused.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/fused.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/env.h"

namespace timedrl {

namespace {

// Holds the per-row statistics FusedLayerNorm saves for its backward pass.
// The backward closure lives in a std::function (which requires a copyable
// callable), so the buffers ride behind a shared_ptr; the destructor returns
// them to the buffer pool when the autograd node is released rather than
// heap-freeing them, keeping steady-state training at zero pool misses.
struct PooledRowStats {
  std::vector<float> mean;
  std::vector<float> rstd;
  ~PooledRowStats() {
    pool::Release(std::move(mean));
    pool::Release(std::move(rstd));
  }
};

}  // namespace

namespace fusion {
namespace {

std::atomic<bool> g_enabled{[] {
  return !util::Env::GetBool("TIMEDRL_FUSION_DISABLE", false);
}()};

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace fusion

Tensor FusedLayerNorm(const Tensor& x, const Tensor& gamma,
                      const Tensor& beta, float eps) {
  TIMEDRL_CHECK_GE(x.dim(), 1);
  const int64_t features = x.size(-1);
  TIMEDRL_CHECK_EQ(gamma.numel(), features)
      << "FusedLayerNorm gamma " << ShapeToString(gamma.shape())
      << " for input " << ShapeToString(x.shape());
  TIMEDRL_CHECK_EQ(beta.numel(), features);

  if (!fusion::Enabled()) {
    // The composition this op replaced (nn::LayerNorm pre-fusion).
    Tensor mu = Mean(x, {-1}, /*keepdim=*/true);
    Tensor centered = x - mu;
    Tensor var = Mean(centered * centered, {-1}, /*keepdim=*/true);
    Tensor normalized = centered / Sqrt(var + eps);
    return normalized * gamma + beta;
  }

  TIMEDRL_TRACE_OP("fused_layer_norm");
  const int64_t rows = x.numel() / features;
  std::vector<float> out = pool::AcquireUninit(x.numel());
  const bool recording =
      GradEnabled() && (x.requires_grad() || gamma.requires_grad() ||
                        beta.requires_grad());
  if (!recording) {
    kernels::FusedLayerNormForward(x.data().data(), gamma.data().data(),
                                   beta.data().data(), eps, out.data(),
                                   /*mean=*/nullptr, /*rstd=*/nullptr, rows,
                                   features);
    return internal::MakeLeafResult(x.shape(), std::move(out));
  }

  auto stats = std::make_shared<PooledRowStats>();
  stats->mean = pool::AcquireUninit(rows);
  stats->rstd = pool::AcquireUninit(rows);
  kernels::FusedLayerNormForward(x.data().data(), gamma.data().data(),
                                 beta.data().data(), eps, out.data(),
                                 stats->mean.data(), stats->rstd.data(), rows,
                                 features);

  auto x_impl = x.impl();
  auto gamma_impl = gamma.impl();
  auto beta_impl = beta.impl();
  auto backward = [x_impl, gamma_impl, beta_impl, stats, rows,
                   features](TensorImpl& node) {
    float* dx = x_impl->requires_grad ? x_impl->MutableGrad().data() : nullptr;
    float* dgamma =
        gamma_impl->requires_grad ? gamma_impl->MutableGrad().data() : nullptr;
    float* dbeta =
        beta_impl->requires_grad ? beta_impl->MutableGrad().data() : nullptr;
    if (dx == nullptr && dgamma == nullptr && dbeta == nullptr) return;
    kernels::FusedLayerNormBackward(node.grad.data(), x_impl->data.data(),
                                    gamma_impl->data.data(),
                                    stats->mean.data(), stats->rstd.data(),
                                    dx, dgamma, dbeta, rows, features);
  };
  return internal::MakeOpResult(x.shape(), std::move(out),
                                {x.impl(), gamma.impl(), beta.impl()},
                                std::move(backward));
}

Tensor FusedAttentionSoftmax(const Tensor& scores, float scale,
                             const Tensor& mask) {
  constexpr float kMaskedValue = -1e9f;
  TIMEDRL_CHECK_GE(scores.dim(), 1);
  const int64_t dim = scores.size(-1);
  const int64_t rows = scores.numel() / dim;
  int64_t mask_rows = 0;
  if (mask.defined()) {
    TIMEDRL_CHECK_EQ(mask.dim(), 2) << "mask must be a [T, T] tile";
    TIMEDRL_CHECK_EQ(mask.size(1), dim);
    mask_rows = mask.size(0);
    TIMEDRL_CHECK_EQ(rows % mask_rows, 0)
        << "mask tile " << ShapeToString(mask.shape())
        << " does not tile scores " << ShapeToString(scores.shape());
  }

  if (!fusion::Enabled()) {
    // The composition this op replaced (attention pre-fusion).
    Tensor scaled = scores * scale;
    if (mask.defined()) scaled = MaskedFill(scaled, mask, kMaskedValue);
    return Softmax(scaled, -1);
  }

  TIMEDRL_TRACE_OP("fused_softmax");
  std::vector<float> out = pool::AcquireUninit(scores.numel());
  kernels::FusedSoftmaxForward(
      scores.data().data(), mask.defined() ? mask.data().data() : nullptr,
      mask_rows, scale, kMaskedValue, out.data(), rows, dim);
  if (!internal::Recording(scores)) {
    return internal::MakeLeafResult(scores.shape(), std::move(out));
  }

  auto scores_impl = scores.impl();
  auto backward = [scores_impl, scale, rows, dim](TensorImpl& node) {
    if (!scores_impl->requires_grad) return;
    kernels::FusedSoftmaxBackward(node.grad.data(), node.data.data(), scale,
                                  scores_impl->MutableGrad().data(), rows,
                                  dim);
  };
  return internal::MakeOpResult(scores.shape(), std::move(out),
                                {scores.impl()}, std::move(backward));
}

Tensor FusedBiasGelu(const Tensor& x, const Tensor& bias) {
  TIMEDRL_CHECK_GE(x.dim(), 1);
  const int64_t features = x.size(-1);
  if (bias.defined()) {
    TIMEDRL_CHECK_EQ(bias.numel(), features)
        << "FusedBiasGelu bias " << ShapeToString(bias.shape())
        << " for input " << ShapeToString(x.shape());
  }

  if (!fusion::Enabled()) {
    // The composition this op replaced (Linear bias epilogue + Gelu).
    return bias.defined() ? Gelu(x + bias) : Gelu(x);
  }

  TIMEDRL_TRACE_OP("fused_bias_gelu");
  const int64_t rows = x.numel() / features;
  std::vector<float> out = pool::AcquireUninit(x.numel());
  kernels::FusedBiasGeluForward(x.data().data(),
                                bias.defined() ? bias.data().data() : nullptr,
                                out.data(), rows, features);
  const bool recording =
      GradEnabled() &&
      (x.requires_grad() || (bias.defined() && bias.requires_grad()));
  if (!recording) {
    return internal::MakeLeafResult(x.shape(), std::move(out));
  }

  auto x_impl = x.impl();
  auto bias_impl = bias.defined() ? bias.impl() : nullptr;
  auto backward = [x_impl, bias_impl, rows, features](TensorImpl& node) {
    float* dx = x_impl->requires_grad ? x_impl->MutableGrad().data() : nullptr;
    float* dbias = (bias_impl != nullptr && bias_impl->requires_grad)
                       ? bias_impl->MutableGrad().data()
                       : nullptr;
    if (dx == nullptr && dbias == nullptr) return;
    std::vector<float> scratch;
    if (dbias != nullptr) scratch = pool::AcquireUninit(rows * features);
    kernels::FusedBiasGeluBackward(
        node.grad.data(), x_impl->data.data(),
        bias_impl != nullptr ? bias_impl->data.data() : nullptr, dx, dbias,
        dbias != nullptr ? scratch.data() : nullptr, rows, features);
    pool::Release(std::move(scratch));
  };
  std::vector<std::shared_ptr<TensorImpl>> parents = {x.impl()};
  if (bias.defined()) parents.push_back(bias.impl());
  return internal::MakeOpResult(x.shape(), std::move(out), std::move(parents),
                                std::move(backward));
}

}  // namespace timedrl
