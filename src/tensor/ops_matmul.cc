// Batched matrix multiplication.

#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl {
namespace {

// C[m,n] += A[m,k] * B[k,n]
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[m,k] += A[m,n] * B[k,n]^T  (i.e. C = A * B^T)
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += arow[j] * brow[j];
      c[i * k + p] += acc;
    }
  }
}

// C[k,n] += A[m,k]^T * B[m,n]  (i.e. C = A^T * B)
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* brow = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      float* crow = c + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TIMEDRL_CHECK_GE(a.dim(), 2);
  TIMEDRL_CHECK_GE(b.dim(), 2);
  const int64_t m = a.size(-2);
  const int64_t k = a.size(-1);
  const int64_t k2 = b.size(-2);
  const int64_t n = b.size(-1);
  TIMEDRL_CHECK_EQ(k, k2) << "matmul inner dims: " << ShapeToString(a.shape())
                          << " x " << ShapeToString(b.shape());

  // Batch handling: equal batch dims, or one operand is rank-2 and shared.
  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  Shape batch;
  bool a_shared = false;  // a is rank-2, reused across batches
  bool b_shared = false;
  if (a_batch == b_batch) {
    batch = a_batch;
  } else if (b_batch.empty()) {
    batch = a_batch;
    b_shared = true;
  } else if (a_batch.empty()) {
    batch = b_batch;
    a_shared = true;
  } else {
    TIMEDRL_CHECK(false) << "matmul batch dims must match or one operand must "
                            "be rank-2: "
                         << ShapeToString(a.shape()) << " x "
                         << ShapeToString(b.shape());
  }
  const int64_t num_batches = NumElements(batch);

  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);

  std::vector<float> out(NumElements(out_shape), 0.0f);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  for (int64_t batch_index = 0; batch_index < num_batches; ++batch_index) {
    const float* ab = pa + (a_shared ? 0 : batch_index * m * k);
    const float* bb = pb + (b_shared ? 0 : batch_index * k * n);
    GemmNN(ab, bb, out.data() + batch_index * m * n, m, k, n);
  }

  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [a_impl, b_impl, m, k, n, num_batches, a_shared,
                   b_shared](TensorImpl& node) {
    const float* g = node.grad.data();
    const float* pa = a_impl->data.data();
    const float* pb = b_impl->data.data();
    if (a_impl->requires_grad) {
      float* ga = a_impl->MutableGrad().data();
      for (int64_t batch_index = 0; batch_index < num_batches; ++batch_index) {
        // dA = dOut * B^T
        GemmNT(g + batch_index * m * n,
               pb + (b_shared ? 0 : batch_index * k * n),
               ga + (a_shared ? 0 : batch_index * m * k), m, n, k);
      }
    }
    if (b_impl->requires_grad) {
      float* gb = b_impl->MutableGrad().data();
      for (int64_t batch_index = 0; batch_index < num_batches; ++batch_index) {
        // dB = A^T * dOut
        GemmTN(pa + (a_shared ? 0 : batch_index * m * k),
               g + batch_index * m * n,
               gb + (b_shared ? 0 : batch_index * k * n), m, k, n);
      }
    }
  };
  return internal::MakeOpResult(std::move(out_shape), std::move(out),
                                {a.impl(), b.impl()}, std::move(backward));
}

}  // namespace timedrl
