// Batched matrix multiplication: shape checking and autograd wiring only —
// the dense math lives in tensor/kernels/gemm.*.

#include <vector>

#include "obs/trace.h"
#include "tensor/broadcast_iter.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/gemm.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace timedrl {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TIMEDRL_TRACE_OP("matmul");
  TIMEDRL_CHECK_GE(a.dim(), 2);
  TIMEDRL_CHECK_GE(b.dim(), 2);
  const int64_t m = a.size(-2);
  const int64_t k = a.size(-1);
  const int64_t k2 = b.size(-2);
  const int64_t n = b.size(-1);
  TIMEDRL_CHECK_EQ(k, k2) << "matmul inner dims: " << ShapeToString(a.shape())
                          << " x " << ShapeToString(b.shape());

  // Batch dims broadcast with NumPy semantics ([B,1,m,k] x [1,H,k,n] etc.).
  Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  TIMEDRL_CHECK(BroadcastCompatible(a_batch, b_batch))
      << "matmul batch dims must broadcast: " << ShapeToString(a.shape())
      << " x " << ShapeToString(b.shape());
  const Shape batch = BroadcastShape(a_batch, b_batch);
  const int64_t num_batches = NumElements(batch);

  // Precomputed per-batch matrix indices into a and b (equal for all
  // batches on broadcast dims). Shared by forward and backward.
  std::vector<int64_t> a_index(num_batches);
  std::vector<int64_t> b_index(num_batches);
  internal::ForEachBroadcast2(batch, BroadcastStrides(a_batch, batch),
                              BroadcastStrides(b_batch, batch),
                              [&](int64_t i, int64_t oa, int64_t ob) {
                                a_index[i] = oa;
                                b_index[i] = ob;
                              });

  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);

  // Uninitialized: each output batch slice is written exactly once by an
  // overwrite-mode GEMM, so no zero-fill pass is needed.
  std::vector<float> out = pool::AcquireUninit(NumElements(out_shape));
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data();
  if (num_batches >= NumThreads()) {
    // Output batches are disjoint, so the batch loop parallelizes; each
    // GEMM then runs serially inside its worker (reentrancy guard).
    ParallelFor(0, num_batches, 1, [&](int64_t begin, int64_t end) {
      for (int64_t bi = begin; bi < end; ++bi) {
        kernels::GemmNN(pa + a_index[bi] * m * k, pb + b_index[bi] * k * n,
                        po + bi * m * n, m, k, n, /*accumulate=*/false);
      }
    });
  } else {
    for (int64_t bi = 0; bi < num_batches; ++bi) {
      kernels::GemmNN(pa + a_index[bi] * m * k, pb + b_index[bi] * k * n,
                      po + bi * m * n, m, k, n, /*accumulate=*/false);
    }
  }
  if (!internal::Recording(a, b)) {
    return internal::MakeLeafResult(std::move(out_shape), std::move(out));
  }

  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [a_impl, b_impl, m, k, n, num_batches, a_index,
                   b_index](TensorImpl& node) {
    const float* g = node.grad.data();
    const float* pa = a_impl->data.data();
    const float* pb = b_impl->data.data();
    // Broadcast batch dims make several output batches accumulate into the
    // SAME input matrix, so the batch loops stay serial; the GEMMs
    // parallelize internally over disjoint output rows instead.
    if (a_impl->requires_grad) {
      float* ga = a_impl->MutableGrad().data();
      for (int64_t bi = 0; bi < num_batches; ++bi) {
        // dA = dOut * B^T
        kernels::GemmNT(g + bi * m * n, pb + b_index[bi] * k * n,
                        ga + a_index[bi] * m * k, m, n, k);
      }
    }
    if (b_impl->requires_grad) {
      float* gb = b_impl->MutableGrad().data();
      for (int64_t bi = 0; bi < num_batches; ++bi) {
        // dB = A^T * dOut
        kernels::GemmTN(pa + a_index[bi] * m * k, g + bi * m * n,
                        gb + b_index[bi] * k * n, m, k, n);
      }
    }
  };
  return internal::MakeOpResult(std::move(out_shape), std::move(out),
                                {a.impl(), b.impl()}, std::move(backward));
}

}  // namespace timedrl
