// 1-D convolution and pooling.

#include <limits>

#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl {

Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride, int64_t padding, int64_t dilation) {
  TIMEDRL_CHECK_EQ(input.dim(), 3) << "Conv1d input must be [B, C_in, L]";
  TIMEDRL_CHECK_EQ(weight.dim(), 3) << "Conv1d weight must be [C_out, C_in, K]";
  TIMEDRL_CHECK_GE(stride, 1);
  TIMEDRL_CHECK_GE(dilation, 1);
  TIMEDRL_CHECK_GE(padding, 0);

  const int64_t batch = input.size(0);
  const int64_t c_in = input.size(1);
  const int64_t length = input.size(2);
  const int64_t c_out = weight.size(0);
  const int64_t kernel = weight.size(2);
  TIMEDRL_CHECK_EQ(weight.size(1), c_in);
  if (bias.defined()) {
    TIMEDRL_CHECK(bias.shape() == Shape{c_out});
  }

  const int64_t out_length =
      (length + 2 * padding - dilation * (kernel - 1) - 1) / stride + 1;
  TIMEDRL_CHECK_GT(out_length, 0)
      << "Conv1d produces empty output for L=" << length << " K=" << kernel;

  std::vector<float> out(batch * c_out * out_length, 0.0f);
  const std::vector<float>& x = input.data();
  const std::vector<float>& w = weight.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t co = 0; co < c_out; ++co) {
      float* orow = out.data() + (b * c_out + co) * out_length;
      if (bias.defined()) {
        const float bv = bias.data()[co];
        for (int64_t l = 0; l < out_length; ++l) orow[l] = bv;
      }
      for (int64_t ci = 0; ci < c_in; ++ci) {
        const float* xrow = x.data() + (b * c_in + ci) * length;
        const float* wrow = w.data() + (co * c_in + ci) * kernel;
        for (int64_t l = 0; l < out_length; ++l) {
          const int64_t base = l * stride - padding;
          float acc = 0.0f;
          for (int64_t kk = 0; kk < kernel; ++kk) {
            const int64_t pos = base + kk * dilation;
            if (pos >= 0 && pos < length) acc += wrow[kk] * xrow[pos];
          }
          orow[l] += acc;
        }
      }
    }
  }

  auto x_impl = input.impl();
  auto w_impl = weight.impl();
  std::shared_ptr<TensorImpl> b_impl = bias.defined() ? bias.impl() : nullptr;
  std::vector<std::shared_ptr<TensorImpl>> parents = {input.impl(),
                                                      weight.impl()};
  if (b_impl) parents.push_back(b_impl);

  auto backward = [x_impl, w_impl, b_impl, batch, c_in, c_out, length, kernel,
                   out_length, stride, padding, dilation](TensorImpl& node) {
    const std::vector<float>& g = node.grad;
    const std::vector<float>& x = x_impl->data;
    const std::vector<float>& w = w_impl->data;
    const bool need_x = x_impl->requires_grad;
    const bool need_w = w_impl->requires_grad;
    const bool need_b = b_impl && b_impl->requires_grad;
    std::vector<float>* gx = need_x ? &x_impl->MutableGrad() : nullptr;
    std::vector<float>* gw = need_w ? &w_impl->MutableGrad() : nullptr;
    std::vector<float>* gb = need_b ? &b_impl->MutableGrad() : nullptr;

    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t co = 0; co < c_out; ++co) {
        const float* grow = g.data() + (b * c_out + co) * out_length;
        if (need_b) {
          float acc = 0.0f;
          for (int64_t l = 0; l < out_length; ++l) acc += grow[l];
          (*gb)[co] += acc;
        }
        for (int64_t ci = 0; ci < c_in; ++ci) {
          const float* xrow = x.data() + (b * c_in + ci) * length;
          const float* wrow = w.data() + (co * c_in + ci) * kernel;
          float* gxrow = need_x ? gx->data() + (b * c_in + ci) * length
                                : nullptr;
          float* gwrow = need_w ? gw->data() + (co * c_in + ci) * kernel
                                : nullptr;
          for (int64_t l = 0; l < out_length; ++l) {
            const float gv = grow[l];
            if (gv == 0.0f) continue;
            const int64_t base = l * stride - padding;
            for (int64_t kk = 0; kk < kernel; ++kk) {
              const int64_t pos = base + kk * dilation;
              if (pos < 0 || pos >= length) continue;
              if (need_x) gxrow[pos] += gv * wrow[kk];
              if (need_w) gwrow[kk] += gv * xrow[pos];
            }
          }
        }
      }
    }
  };
  return internal::MakeOpResult({batch, c_out, out_length}, std::move(out),
                                std::move(parents), std::move(backward));
}

Tensor MaxPool1d(const Tensor& input, int64_t kernel, int64_t stride) {
  TIMEDRL_CHECK_EQ(input.dim(), 3) << "MaxPool1d input must be [B, C, L]";
  TIMEDRL_CHECK_GE(kernel, 1);
  TIMEDRL_CHECK_GE(stride, 1);
  const int64_t batch = input.size(0);
  const int64_t channels = input.size(1);
  const int64_t length = input.size(2);
  const int64_t out_length = (length - kernel) / stride + 1;
  TIMEDRL_CHECK_GT(out_length, 0);

  std::vector<float> out(batch * channels * out_length);
  std::vector<int64_t> argmax(out.size());
  const std::vector<float>& x = input.data();
  for (int64_t bc = 0; bc < batch * channels; ++bc) {
    const float* xrow = x.data() + bc * length;
    for (int64_t l = 0; l < out_length; ++l) {
      float best = -std::numeric_limits<float>::infinity();
      int64_t best_pos = l * stride;
      for (int64_t kk = 0; kk < kernel; ++kk) {
        const int64_t pos = l * stride + kk;
        if (xrow[pos] > best) {
          best = xrow[pos];
          best_pos = pos;
        }
      }
      out[bc * out_length + l] = best;
      argmax[bc * out_length + l] = best_pos;
    }
  }

  auto x_impl = input.impl();
  auto backward = [x_impl, argmax, batch, channels, length,
                   out_length](TensorImpl& node) {
    if (!x_impl->requires_grad) return;
    std::vector<float>& gx = x_impl->MutableGrad();
    const std::vector<float>& g = node.grad;
    for (int64_t bc = 0; bc < batch * channels; ++bc) {
      for (int64_t l = 0; l < out_length; ++l) {
        gx[bc * length + argmax[bc * out_length + l]] +=
            g[bc * out_length + l];
      }
    }
  };
  return internal::MakeOpResult({batch, channels, out_length}, std::move(out),
                                {input.impl()}, std::move(backward));
}

Tensor AvgPool1d(const Tensor& input, int64_t kernel, int64_t stride) {
  TIMEDRL_CHECK_EQ(input.dim(), 3) << "AvgPool1d input must be [B, C, L]";
  TIMEDRL_CHECK_GE(kernel, 1);
  TIMEDRL_CHECK_GE(stride, 1);
  const int64_t batch = input.size(0);
  const int64_t channels = input.size(1);
  const int64_t length = input.size(2);
  const int64_t out_length = (length - kernel) / stride + 1;
  TIMEDRL_CHECK_GT(out_length, 0);

  std::vector<float> out(batch * channels * out_length);
  const std::vector<float>& x = input.data();
  const float inv_kernel = 1.0f / static_cast<float>(kernel);
  for (int64_t bc = 0; bc < batch * channels; ++bc) {
    const float* xrow = x.data() + bc * length;
    for (int64_t l = 0; l < out_length; ++l) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < kernel; ++kk) acc += xrow[l * stride + kk];
      out[bc * out_length + l] = acc * inv_kernel;
    }
  }

  auto x_impl = input.impl();
  auto backward = [x_impl, batch, channels, length, out_length, kernel, stride,
                   inv_kernel](TensorImpl& node) {
    if (!x_impl->requires_grad) return;
    std::vector<float>& gx = x_impl->MutableGrad();
    const std::vector<float>& g = node.grad;
    for (int64_t bc = 0; bc < batch * channels; ++bc) {
      for (int64_t l = 0; l < out_length; ++l) {
        const float gv = g[bc * out_length + l] * inv_kernel;
        for (int64_t kk = 0; kk < kernel; ++kk) {
          gx[bc * length + l * stride + kk] += gv;
        }
      }
    }
  };
  return internal::MakeOpResult({batch, channels, out_length}, std::move(out),
                                {input.impl()}, std::move(backward));
}

}  // namespace timedrl
