// 1-D convolution and pooling: shape checking and autograd wiring only —
// the dense math lives in tensor/kernels/conv1d.* and tensor/kernels/pool.*.

#include <vector>

#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/conv1d.h"
#include "tensor/kernels/pool.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl {

Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride, int64_t padding, int64_t dilation) {
  TIMEDRL_TRACE_OP("conv1d");
  TIMEDRL_CHECK_EQ(input.dim(), 3) << "Conv1d input must be [B, C_in, L]";
  TIMEDRL_CHECK_EQ(weight.dim(), 3) << "Conv1d weight must be [C_out, C_in, K]";
  TIMEDRL_CHECK_GE(stride, 1);
  TIMEDRL_CHECK_GE(dilation, 1);
  TIMEDRL_CHECK_GE(padding, 0);

  kernels::Conv1dGeometry geom;
  geom.batch = input.size(0);
  geom.c_in = input.size(1);
  geom.length = input.size(2);
  geom.c_out = weight.size(0);
  geom.kernel = weight.size(2);
  geom.stride = stride;
  geom.padding = padding;
  geom.dilation = dilation;
  TIMEDRL_CHECK_EQ(weight.size(1), geom.c_in);
  if (bias.defined()) {
    TIMEDRL_CHECK(bias.shape() == Shape{geom.c_out});
  }

  geom.out_length =
      (geom.length + 2 * padding - dilation * (geom.kernel - 1) - 1) / stride +
      1;
  TIMEDRL_CHECK_GT(geom.out_length, 0)
      << "Conv1d produces empty output for L=" << geom.length
      << " K=" << geom.kernel;

  // Uninitialized: Conv1dForward fully writes its output (bias pre-fill or
  // overwrite-mode GEMM).
  std::vector<float> out =
      pool::AcquireUninit(geom.batch * geom.c_out * geom.out_length);
  kernels::Conv1dForward(input.data().data(), weight.data().data(),
                         bias.defined() ? bias.data().data() : nullptr,
                         out.data(), geom);
  const bool recording =
      bias.defined() ? internal::Recording({input, weight, bias})
                     : internal::Recording(input, weight);
  if (!recording) {
    return internal::MakeLeafResult({geom.batch, geom.c_out, geom.out_length},
                                    std::move(out));
  }

  auto x_impl = input.impl();
  auto w_impl = weight.impl();
  std::shared_ptr<TensorImpl> b_impl = bias.defined() ? bias.impl() : nullptr;
  std::vector<std::shared_ptr<TensorImpl>> parents = {input.impl(),
                                                      weight.impl()};
  if (b_impl) parents.push_back(b_impl);

  auto backward = [x_impl, w_impl, b_impl, geom](TensorImpl& node) {
    const float* g = node.grad.data();
    if (x_impl->requires_grad) {
      kernels::Conv1dBackwardInput(w_impl->data.data(), g,
                                   x_impl->MutableGrad().data(), geom);
    }
    if (w_impl->requires_grad) {
      kernels::Conv1dBackwardWeight(x_impl->data.data(), g,
                                    w_impl->MutableGrad().data(), geom);
    }
    if (b_impl && b_impl->requires_grad) {
      kernels::Conv1dBackwardBias(g, b_impl->MutableGrad().data(), geom);
    }
  };
  return internal::MakeOpResult({geom.batch, geom.c_out, geom.out_length},
                                std::move(out), std::move(parents),
                                std::move(backward));
}

Tensor MaxPool1d(const Tensor& input, int64_t kernel, int64_t stride) {
  TIMEDRL_TRACE_OP("max_pool1d");
  TIMEDRL_CHECK_EQ(input.dim(), 3) << "MaxPool1d input must be [B, C, L]";
  TIMEDRL_CHECK_GE(kernel, 1);
  TIMEDRL_CHECK_GE(stride, 1);
  const int64_t batch = input.size(0);
  const int64_t channels = input.size(1);
  const int64_t length = input.size(2);
  const int64_t out_length = (length - kernel) / stride + 1;
  TIMEDRL_CHECK_GT(out_length, 0);
  const int64_t rows = batch * channels;

  std::vector<float> out = pool::AcquireUninit(rows * out_length);
  std::vector<int64_t> argmax(out.size());
  kernels::MaxPool1dForward(input.data().data(), out.data(), argmax.data(),
                            rows, length, kernel, stride, out_length);
  if (!internal::Recording(input)) {
    return internal::MakeLeafResult({batch, channels, out_length},
                                    std::move(out));
  }

  auto x_impl = input.impl();
  auto backward = [x_impl, argmax, rows, length, out_length](TensorImpl& node) {
    if (!x_impl->requires_grad) return;
    kernels::MaxPool1dBackwardAccumulate(node.grad.data(), argmax.data(),
                                         x_impl->MutableGrad().data(), rows,
                                         length, out_length);
  };
  return internal::MakeOpResult({batch, channels, out_length}, std::move(out),
                                {input.impl()}, std::move(backward));
}

Tensor AvgPool1d(const Tensor& input, int64_t kernel, int64_t stride) {
  TIMEDRL_TRACE_OP("avg_pool1d");
  TIMEDRL_CHECK_EQ(input.dim(), 3) << "AvgPool1d input must be [B, C, L]";
  TIMEDRL_CHECK_GE(kernel, 1);
  TIMEDRL_CHECK_GE(stride, 1);
  const int64_t batch = input.size(0);
  const int64_t channels = input.size(1);
  const int64_t length = input.size(2);
  const int64_t out_length = (length - kernel) / stride + 1;
  TIMEDRL_CHECK_GT(out_length, 0);
  const int64_t rows = batch * channels;

  std::vector<float> out = pool::AcquireUninit(rows * out_length);
  kernels::AvgPool1dForward(input.data().data(), out.data(), rows, length,
                            kernel, stride, out_length);
  if (!internal::Recording(input)) {
    return internal::MakeLeafResult({batch, channels, out_length},
                                    std::move(out));
  }

  auto x_impl = input.impl();
  auto backward = [x_impl, rows, length, kernel, stride,
                   out_length](TensorImpl& node) {
    if (!x_impl->requires_grad) return;
    kernels::AvgPool1dBackwardAccumulate(node.grad.data(),
                                         x_impl->MutableGrad().data(), rows,
                                         length, kernel, stride, out_length);
  };
  return internal::MakeOpResult({batch, channels, out_length}, std::move(out),
                                {input.impl()}, std::move(backward));
}

}  // namespace timedrl
