// Internal helper: iterate an output shape while tracking the corresponding
// (possibly broadcast) offsets into one or two input buffers.

#ifndef TIMEDRL_TENSOR_BROADCAST_ITER_H_
#define TIMEDRL_TENSOR_BROADCAST_ITER_H_

#include <cstdint>
#include <vector>

#include "tensor/shape.h"

namespace timedrl::internal {

/// Calls fn(out_index, a_offset, b_offset) for every element of `out_shape`,
/// where a/b offsets follow `sa`/`sb` (zero stride on broadcast dims).
template <typename Fn>
void ForEachBroadcast2(const Shape& out_shape, const std::vector<int64_t>& sa,
                       const std::vector<int64_t>& sb, Fn&& fn) {
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const int64_t total = NumElements(out_shape);
  if (total == 0) return;
  std::vector<int64_t> coord(rank, 0);
  int64_t oa = 0;
  int64_t ob = 0;
  for (int64_t i = 0; i < total; ++i) {
    fn(i, oa, ob);
    // Odometer increment from the innermost dimension.
    for (int64_t d = rank - 1; d >= 0; --d) {
      ++coord[d];
      oa += sa[d];
      ob += sb[d];
      if (coord[d] < out_shape[d]) break;
      coord[d] = 0;
      oa -= sa[d] * out_shape[d];
      ob -= sb[d] * out_shape[d];
    }
  }
}

/// Single-input variant: fn(out_index, a_offset).
template <typename Fn>
void ForEachBroadcast1(const Shape& out_shape, const std::vector<int64_t>& sa,
                       Fn&& fn) {
  std::vector<int64_t> zero(out_shape.size(), 0);
  ForEachBroadcast2(out_shape, sa, zero,
                    [&fn](int64_t i, int64_t oa, int64_t) { fn(i, oa); });
}

}  // namespace timedrl::internal

#endif  // TIMEDRL_TENSOR_BROADCAST_ITER_H_
