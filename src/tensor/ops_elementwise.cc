// Elementwise binary/unary operations with broadcasting and autograd.
// Shape checking and autograd wiring only — the dense loops live in
// tensor/kernels/elementwise.h.

#include <cmath>

#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl {
namespace {

// Shared implementation for broadcasting binary ops.
//
// `fwd(a, b)` computes the value; `dfda(a, b, out)` / `dfdb(a, b, out)` are
// the local partial derivatives used by the backward closure.
template <typename FwdFn, typename DaFn, typename DbFn>
Tensor BinaryOp(const Tensor& a, const Tensor& b, FwdFn fwd, DaFn dfda,
                DbFn dfdb) {
  TIMEDRL_TRACE_OP("elementwise_binary");
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), out_shape);
  const std::vector<int64_t> sb = BroadcastStrides(b.shape(), out_shape);
  const bool same_shape = a.shape() == b.shape();

  // Fully overwritten by Zip/ZipBroadcast below.
  std::vector<float> out = pool::AcquireUninit(NumElements(out_shape));
  if (same_shape) {
    kernels::Zip(a.data().data(), b.data().data(), out.data(),
                 static_cast<int64_t>(out.size()), fwd);
  } else {
    kernels::ZipBroadcast(out_shape, sa, sb, a.data().data(), b.data().data(),
                          out.data(), fwd);
  }
  if (!internal::Recording(a, b)) {
    return internal::MakeLeafResult(out_shape, std::move(out));
  }

  auto a_impl = a.impl();
  auto b_impl = b.impl();
  auto backward = [a_impl, b_impl, sa, sb, same_shape, dfda,
                   dfdb](TensorImpl& node) {
    const bool need_a = a_impl->requires_grad;
    const bool need_b = b_impl->requires_grad;
    float* ga = need_a ? a_impl->MutableGrad().data() : nullptr;
    float* gb = need_b ? b_impl->MutableGrad().data() : nullptr;
    if (!need_a && !need_b) return;
    if (same_shape) {
      kernels::ZipGradAccumulate(node.grad.data(), a_impl->data.data(),
                                 b_impl->data.data(), node.data.data(), ga, gb,
                                 node.numel(), dfda, dfdb);
    } else {
      kernels::ZipGradBroadcastAccumulate(
          node.shape, sa, sb, node.grad.data(), a_impl->data.data(),
          b_impl->data.data(), node.data.data(), ga, gb, dfda, dfdb);
    }
  };
  return internal::MakeOpResult(out_shape, std::move(out),
                                {a.impl(), b.impl()}, std::move(backward));
}

// Shared implementation for unary ops. `dfda(a, out)` is the derivative.
template <typename FwdFn, typename DaFn>
Tensor UnaryOp(const Tensor& a, FwdFn fwd, DaFn dfda) {
  TIMEDRL_TRACE_OP("elementwise_unary");
  std::vector<float> out = pool::AcquireUninit(a.numel());
  kernels::Map(a.data().data(), out.data(), a.numel(), fwd);
  if (!internal::Recording(a)) {
    return internal::MakeLeafResult(a.shape(), std::move(out));
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, dfda](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    kernels::MapGradAccumulate(node.grad.data(), a_impl->data.data(),
                               node.data.data(),
                               a_impl->MutableGrad().data(), node.numel(),
                               dfda);
  };
  return internal::MakeOpResult(a.shape(), std::move(out), {a.impl()},
                                std::move(backward));
}

}  // namespace

// ---- Binary ------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x + y; },
      [](float, float, float) { return 1.0f; },
      [](float, float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x - y; },
      [](float, float, float) { return 1.0f; },
      [](float, float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y, float) { return y; },
      [](float x, float, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y, float) { return 1.0f / y; },
      [](float x, float y, float) { return -x / (y * y); });
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x > y ? x : y; },
      [](float x, float y, float) { return x > y ? 1.0f : 0.0f; },
      [](float x, float y, float) { return x > y ? 0.0f : 1.0f; });
}

Tensor Add(const Tensor& a, float b) { return Add(a, Tensor::Scalar(b)); }
Tensor Sub(const Tensor& a, float b) { return Sub(a, Tensor::Scalar(b)); }
Tensor Sub(float a, const Tensor& b) { return Sub(Tensor::Scalar(a), b); }
Tensor Mul(const Tensor& a, float b) { return Mul(a, Tensor::Scalar(b)); }
Tensor Div(const Tensor& a, float b) { return Div(a, Tensor::Scalar(b)); }
Tensor Div(float a, const Tensor& b) { return Div(Tensor::Scalar(a), b); }

// ---- Unary -------------------------------------------------------------------

Tensor Neg(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return -x; }, [](float, float) { return -1.0f; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  // gelu(x) ~= 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
  constexpr float kAlpha = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kBeta = 0.044715f;
  return UnaryOp(
      a,
      [](float x) {
        float inner = kAlpha * (x + kBeta * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        float inner = kAlpha * (x + kBeta * x * x * x);
        float t = std::tanh(inner);
        float dinner = kAlpha * (1.0f + 3.0f * kBeta * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor LeakyRelu(const Tensor& a, float alpha) {
  return UnaryOp(
      a, [alpha](float x) { return x > 0.0f ? x : alpha * x; },
      [alpha](float x, float) { return x > 0.0f ? 1.0f : alpha; });
}

Tensor Softplus(const Tensor& a) {
  // softplus(x) = max(x, 0) + log1p(exp(-|x|)) is stable for both signs.
  return UnaryOp(
      a,
      [](float x) {
        return (x > 0.0f ? x : 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor Silu(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) { return x / (1.0f + std::exp(-x)); },
      [](float x, float) {
        const float s = 1.0f / (1.0f + std::exp(-x));
        return s * (1.0f + x * (1.0f - s));
      });
}

Tensor Elu(const Tensor& a, float alpha) {
  return UnaryOp(
      a,
      [alpha](float x) { return x >= 0.0f ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float y) {
        return x >= 0.0f ? 1.0f : y + alpha;  // d/dx alpha(e^x - 1) = y+alpha
      });
}

Tensor Pow(const Tensor& a, float exponent) {
  return UnaryOp(
      a, [exponent](float x) { return std::pow(x, exponent); },
      [exponent](float x, float) {
        return exponent * std::pow(x, exponent - 1.0f);
      });
}

Tensor ClampMin(const Tensor& a, float floor) {
  return UnaryOp(
      a, [floor](float x) { return x > floor ? x : floor; },
      [floor](float x, float) { return x > floor ? 1.0f : 0.0f; });
}

Tensor MaskedFill(const Tensor& a, const Tensor& mask, float value) {
  TIMEDRL_CHECK(BroadcastCompatible(a.shape(), mask.shape()));
  const Shape out_shape = BroadcastShape(a.shape(), mask.shape());
  TIMEDRL_CHECK(out_shape == a.shape())
      << "mask must broadcast to the input shape";
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), out_shape);
  const std::vector<int64_t> sm = BroadcastStrides(mask.shape(), out_shape);

  std::vector<float> out = pool::AcquireUninit(NumElements(out_shape));
  kernels::ZipBroadcast(out_shape, sa, sm, a.data().data(), mask.data().data(),
                        out.data(),
                        [value](float x, float m) { return m != 0.0f ? value : x; });
  if (!internal::Recording(a)) {
    return internal::MakeLeafResult(out_shape, std::move(out));
  }

  auto a_impl = a.impl();
  auto m_impl = mask.impl();
  auto backward = [a_impl, m_impl, sa, sm](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    // dMaskedFill/da is 1 where the mask is 0; the mask gets no gradient.
    kernels::ZipGradBroadcastAccumulate(
        node.shape, sa, sm, node.grad.data(), a_impl->data.data(),
        m_impl->data.data(), node.data.data(),
        a_impl->MutableGrad().data(), nullptr,
        [](float, float m, float) { return m == 0.0f ? 1.0f : 0.0f; },
        [](float, float, float) { return 0.0f; });
  };
  return internal::MakeOpResult(out_shape, std::move(out), {a.impl()},
                                std::move(backward));
}

}  // namespace timedrl
