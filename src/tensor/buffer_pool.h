// A recycling pool for the float buffers behind tensor storage.
//
// Training runs thousands of identically-shaped steps, so steady-state
// allocation should be ~zero: every op result, gradient buffer, and kernel
// scratch buffer that a step frees is exactly the buffer the next step
// needs. The pool keeps freed buffers in power-of-two size buckets and hands
// them back on the next Acquire instead of hitting the heap (for the large
// activations this also avoids repeated mmap/munmap + page-fault zeroing).
//
// Concurrency: each thread owns a small lock-free cache per bucket (kernel
// scratch acquired inside thread-pool workers never touches a lock in steady
// state); overflow and cross-thread traffic go through a mutex-protected
// global pool. A thread's cache is flushed to the global pool when the
// thread exits.
//
// Determinism contract: Acquire() returns a zero-filled buffer, bitwise
// identical to a freshly allocated one. AcquireUninit() may return stale
// contents and must only be used where the caller overwrites every element
// before the buffer becomes observable. Under this rule, results are
// bitwise identical whether the pool is enabled or disabled.
//
// The pool is enabled by default; set TIMEDRL_POOL_DISABLE=1 (or call
// SetEnabled(false)) to fall back to plain heap allocation — the escape
// hatch for debugging use-after-release suspicions.

#ifndef TIMEDRL_TENSOR_BUFFER_POOL_H_
#define TIMEDRL_TENSOR_BUFFER_POOL_H_

#include <cstdint>
#include <vector>

namespace timedrl::pool {

/// A recycled (or fresh) buffer of exactly `n` elements, zero-filled.
/// Capacity is rounded up to the bucket size (next power of two).
std::vector<float> Acquire(int64_t n);

/// Like Acquire but with unspecified contents. Only for buffers whose every
/// element is overwritten before being read (see determinism contract).
std::vector<float> AcquireUninit(int64_t n);

/// Returns a buffer to the pool. Accepts any vector: buffers whose capacity
/// is not a pool bucket size (i.e. that did not come from Acquire) are
/// simply freed. Empty vectors are ignored.
void Release(std::vector<float>&& buffer);

/// Whether Acquire/Release recycle (true) or fall through to the heap.
bool Enabled();

/// Programmatic override of TIMEDRL_POOL_DISABLE (benchmarks, tests).
void SetEnabled(bool enabled);

// Allocation statistics are exposed exclusively through the process-wide
// metrics registry (obs::Registry::Global().Snapshot()), maintained with
// relaxed atomics on the hot paths:
//   counters  pool.hits      Acquire satisfied from a cache
//             pool.misses    Acquire that had to allocate
//             pool.returned  buffers recycled into the pool
//             pool.dropped   released buffers freed (foreign/oversized)
//   gauges    pool.bytes_live        acquired and not yet returned
//             pool.bytes_pooled      sitting idle in caches
//             pool.high_water_bytes  max observed live + pooled
// Byte gauges are in bucket-rounded bytes and are advisory: buffers that
// enter the pool without having been acquired from it (e.g. a pow2-capacity
// vector passed to Tensor::FromVector) skew bytes_live slightly.

/// Moves this thread's cached buffers to the global pool (so another thread
/// can acquire them). Called automatically when a thread exits.
void FlushThreadCache();

/// Frees every cached buffer in the global pool and this thread's cache.
void Clear();

}  // namespace timedrl::pool

#endif  // TIMEDRL_TENSOR_BUFFER_POOL_H_
