#include "tensor/buffer_pool.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"

namespace timedrl::pool {
namespace {

// Buckets hold capacities 2^0 .. 2^(kNumBuckets-1) floats; larger requests
// bypass the pool entirely (they would pin too much memory anyway).
constexpr int kNumBuckets = 31;
constexpr size_t kThreadCacheBuffersPerBucket = 8;

/// Smallest b with (1 << b) >= n. Precondition: n >= 1.
int BucketIndex(int64_t n) {
  int b = 0;
  while ((int64_t{1} << b) < n) ++b;
  return b;
}

bool IsPowerOfTwo(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// Registry-backed pool statistics, looked up once and cached. All mutators
/// are relaxed atomics; readers go through the registry snapshot API.
struct Counters {
  obs::Counter& hits = obs::Registry::Global().GetCounter("pool.hits");
  obs::Counter& misses = obs::Registry::Global().GetCounter("pool.misses");
  obs::Counter& returned = obs::Registry::Global().GetCounter("pool.returned");
  obs::Counter& dropped = obs::Registry::Global().GetCounter("pool.dropped");
  obs::Gauge& bytes_live = obs::Registry::Global().GetGauge("pool.bytes_live");
  obs::Gauge& bytes_pooled =
      obs::Registry::Global().GetGauge("pool.bytes_pooled");
  obs::Gauge& high_water =
      obs::Registry::Global().GetGauge("pool.high_water_bytes");
};

Counters& counters() {
  // Leaked: releases can arrive during static destruction.
  static Counters* c = new Counters;
  return *c;
}

void RaiseHighWater() {
  Counters& c = counters();
  c.high_water.SetMax(c.bytes_live.value() + c.bytes_pooled.value());
}

struct Freelists {
  std::vector<std::vector<float>> buckets[kNumBuckets];
};

struct GlobalPool {
  std::mutex mutex;
  Freelists lists;
};

// Leaked on purpose: worker threads and static tensors may release buffers
// during thread/static destruction, after a function-local static would
// already be gone.
GlobalPool& global_pool() {
  static GlobalPool* pool = new GlobalPool;
  return *pool;
}

void FlushToGlobal(Freelists& local) {
  GlobalPool& global = global_pool();
  std::lock_guard<std::mutex> lock(global.mutex);
  for (int b = 0; b < kNumBuckets; ++b) {
    for (std::vector<float>& buffer : local.buckets[b]) {
      global.lists.buckets[b].push_back(std::move(buffer));
    }
    local.buckets[b].clear();
  }
}

struct ThreadCache {
  Freelists lists;
  ~ThreadCache() { FlushToGlobal(lists); }
};

ThreadCache& thread_cache() {
  thread_local ThreadCache cache;
  return cache;
}

bool EnvEnabled() {
  return !util::Env::GetBool("TIMEDRL_POOL_DISABLE", false);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{EnvEnabled()};
  return enabled;
}

/// Pops a cached buffer for bucket `b`, local cache first, then global.
/// Returns true on a hit.
bool TryPop(int b, std::vector<float>* out) {
  auto& local = thread_cache().lists.buckets[b];
  if (!local.empty()) {
    *out = std::move(local.back());
    local.pop_back();
    return true;
  }
  GlobalPool& global = global_pool();
  std::lock_guard<std::mutex> lock(global.mutex);
  auto& shared = global.lists.buckets[b];
  if (!shared.empty()) {
    *out = std::move(shared.back());
    shared.pop_back();
    return true;
  }
  return false;
}

std::vector<float> AcquireImpl(int64_t n, bool zero_fill) {
  if (n <= 0) return {};
  if (!Enabled() || BucketIndex(n) >= kNumBuckets) {
    return std::vector<float>(n);  // value-initialized either way
  }
  const int b = BucketIndex(n);
  const int64_t bucket_bytes =
      (int64_t{1} << b) * static_cast<int64_t>(sizeof(float));

  Counters& c = counters();
  std::vector<float> buffer;
  if (TryPop(b, &buffer)) {
    c.hits.Increment();
    c.bytes_pooled.Add(-static_cast<double>(bucket_bytes));
  } else {
    TIMEDRL_TRACE_SCOPE_CAT("pool/miss", "pool");
    c.misses.Increment();
    buffer.reserve(int64_t{1} << b);
  }
  c.bytes_live.Add(static_cast<double>(bucket_bytes));
  RaiseHighWater();

  if (zero_fill) {
    buffer.assign(n, 0.0f);
  } else {
    // Caller promises to overwrite every element; stale contents are fine.
    buffer.resize(n);
  }
  return buffer;
}

}  // namespace

std::vector<float> Acquire(int64_t n) { return AcquireImpl(n, true); }

std::vector<float> AcquireUninit(int64_t n) { return AcquireImpl(n, false); }

void Release(std::vector<float>&& buffer) {
  std::vector<float> victim = std::move(buffer);
  const int64_t capacity = static_cast<int64_t>(victim.capacity());
  if (capacity == 0) return;
  Counters& c = counters();
  if (!Enabled() || !IsPowerOfTwo(capacity) ||
      BucketIndex(capacity) >= kNumBuckets) {
    c.dropped.Increment();
    return;  // freed by destructor
  }
  const int b = BucketIndex(capacity);
  const int64_t bucket_bytes = capacity * static_cast<int64_t>(sizeof(float));
  c.returned.Increment();
  c.bytes_live.Add(-static_cast<double>(bucket_bytes));
  c.bytes_pooled.Add(static_cast<double>(bucket_bytes));

  auto& local = thread_cache().lists.buckets[b];
  if (local.size() < kThreadCacheBuffersPerBucket) {
    local.push_back(std::move(victim));
    return;
  }
  GlobalPool& global = global_pool();
  std::lock_guard<std::mutex> lock(global.mutex);
  global.lists.buckets[b].push_back(std::move(victim));
}

bool Enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

void FlushThreadCache() {
  TIMEDRL_TRACE_SCOPE_CAT("pool/flush", "pool");
  FlushToGlobal(thread_cache().lists);
}

void Clear() {
  FlushThreadCache();
  GlobalPool& global = global_pool();
  std::lock_guard<std::mutex> lock(global.mutex);
  int64_t freed = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    for (const std::vector<float>& buffer : global.lists.buckets[b]) {
      freed +=
          static_cast<int64_t>(buffer.capacity() * sizeof(float));
    }
    global.lists.buckets[b].clear();
  }
  counters().bytes_pooled.Add(-static_cast<double>(freed));
}

}  // namespace timedrl::pool
