#include "tensor/buffer_pool.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace timedrl::pool {
namespace {

// Buckets hold capacities 2^0 .. 2^(kNumBuckets-1) floats; larger requests
// bypass the pool entirely (they would pin too much memory anyway).
constexpr int kNumBuckets = 31;
constexpr size_t kThreadCacheBuffersPerBucket = 8;

/// Smallest b with (1 << b) >= n. Precondition: n >= 1.
int BucketIndex(int64_t n) {
  int b = 0;
  while ((int64_t{1} << b) < n) ++b;
  return b;
}

bool IsPowerOfTwo(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

struct Counters {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> returned{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<int64_t> bytes_live{0};
  std::atomic<int64_t> bytes_pooled{0};
  std::atomic<int64_t> high_water{0};
};

Counters& counters() {
  static Counters c;
  return c;
}

void RaiseHighWater() {
  Counters& c = counters();
  const int64_t total = c.bytes_live.load(std::memory_order_relaxed) +
                        c.bytes_pooled.load(std::memory_order_relaxed);
  int64_t hw = c.high_water.load(std::memory_order_relaxed);
  while (total > hw && !c.high_water.compare_exchange_weak(
                           hw, total, std::memory_order_relaxed)) {
  }
}

struct Freelists {
  std::vector<std::vector<float>> buckets[kNumBuckets];
};

struct GlobalPool {
  std::mutex mutex;
  Freelists lists;
};

// Leaked on purpose: worker threads and static tensors may release buffers
// during thread/static destruction, after a function-local static would
// already be gone.
GlobalPool& global_pool() {
  static GlobalPool* pool = new GlobalPool;
  return *pool;
}

void FlushToGlobal(Freelists& local) {
  GlobalPool& global = global_pool();
  std::lock_guard<std::mutex> lock(global.mutex);
  for (int b = 0; b < kNumBuckets; ++b) {
    for (std::vector<float>& buffer : local.buckets[b]) {
      global.lists.buckets[b].push_back(std::move(buffer));
    }
    local.buckets[b].clear();
  }
}

struct ThreadCache {
  Freelists lists;
  ~ThreadCache() { FlushToGlobal(lists); }
};

ThreadCache& thread_cache() {
  thread_local ThreadCache cache;
  return cache;
}

bool EnvEnabled() {
  const char* env = std::getenv("TIMEDRL_POOL_DISABLE");
  if (env == nullptr || env[0] == '\0' || (env[0] == '0' && env[1] == '\0')) {
    return true;
  }
  return false;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{EnvEnabled()};
  return enabled;
}

/// Pops a cached buffer for bucket `b`, local cache first, then global.
/// Returns true on a hit.
bool TryPop(int b, std::vector<float>* out) {
  auto& local = thread_cache().lists.buckets[b];
  if (!local.empty()) {
    *out = std::move(local.back());
    local.pop_back();
    return true;
  }
  GlobalPool& global = global_pool();
  std::lock_guard<std::mutex> lock(global.mutex);
  auto& shared = global.lists.buckets[b];
  if (!shared.empty()) {
    *out = std::move(shared.back());
    shared.pop_back();
    return true;
  }
  return false;
}

std::vector<float> AcquireImpl(int64_t n, bool zero_fill) {
  if (n <= 0) return {};
  if (!Enabled() || BucketIndex(n) >= kNumBuckets) {
    return std::vector<float>(n);  // value-initialized either way
  }
  const int b = BucketIndex(n);
  const int64_t bucket_bytes =
      (int64_t{1} << b) * static_cast<int64_t>(sizeof(float));

  Counters& c = counters();
  std::vector<float> buffer;
  if (TryPop(b, &buffer)) {
    c.hits.fetch_add(1, std::memory_order_relaxed);
    c.bytes_pooled.fetch_sub(bucket_bytes, std::memory_order_relaxed);
  } else {
    c.misses.fetch_add(1, std::memory_order_relaxed);
    buffer.reserve(int64_t{1} << b);
  }
  c.bytes_live.fetch_add(bucket_bytes, std::memory_order_relaxed);
  RaiseHighWater();

  if (zero_fill) {
    buffer.assign(n, 0.0f);
  } else {
    // Caller promises to overwrite every element; stale contents are fine.
    buffer.resize(n);
  }
  return buffer;
}

}  // namespace

std::vector<float> Acquire(int64_t n) { return AcquireImpl(n, true); }

std::vector<float> AcquireUninit(int64_t n) { return AcquireImpl(n, false); }

void Release(std::vector<float>&& buffer) {
  std::vector<float> victim = std::move(buffer);
  const int64_t capacity = static_cast<int64_t>(victim.capacity());
  if (capacity == 0) return;
  Counters& c = counters();
  if (!Enabled() || !IsPowerOfTwo(capacity) ||
      BucketIndex(capacity) >= kNumBuckets) {
    c.dropped.fetch_add(1, std::memory_order_relaxed);
    return;  // freed by destructor
  }
  const int b = BucketIndex(capacity);
  const int64_t bucket_bytes = capacity * static_cast<int64_t>(sizeof(float));
  c.returned.fetch_add(1, std::memory_order_relaxed);
  c.bytes_live.fetch_sub(bucket_bytes, std::memory_order_relaxed);
  c.bytes_pooled.fetch_add(bucket_bytes, std::memory_order_relaxed);

  auto& local = thread_cache().lists.buckets[b];
  if (local.size() < kThreadCacheBuffersPerBucket) {
    local.push_back(std::move(victim));
    return;
  }
  GlobalPool& global = global_pool();
  std::lock_guard<std::mutex> lock(global.mutex);
  global.lists.buckets[b].push_back(std::move(victim));
}

bool Enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

Stats GetStats() {
  Counters& c = counters();
  Stats stats;
  stats.hits = c.hits.load(std::memory_order_relaxed);
  stats.misses = c.misses.load(std::memory_order_relaxed);
  stats.returned = c.returned.load(std::memory_order_relaxed);
  stats.dropped = c.dropped.load(std::memory_order_relaxed);
  stats.bytes_live = c.bytes_live.load(std::memory_order_relaxed);
  stats.bytes_pooled = c.bytes_pooled.load(std::memory_order_relaxed);
  stats.high_water_bytes = c.high_water.load(std::memory_order_relaxed);
  return stats;
}

void ResetStats() {
  Counters& c = counters();
  c.hits.store(0, std::memory_order_relaxed);
  c.misses.store(0, std::memory_order_relaxed);
  c.returned.store(0, std::memory_order_relaxed);
  c.dropped.store(0, std::memory_order_relaxed);
  c.high_water.store(c.bytes_live.load(std::memory_order_relaxed) +
                         c.bytes_pooled.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

void FlushThreadCache() { FlushToGlobal(thread_cache().lists); }

void Clear() {
  FlushThreadCache();
  GlobalPool& global = global_pool();
  std::lock_guard<std::mutex> lock(global.mutex);
  int64_t freed = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    for (const std::vector<float>& buffer : global.lists.buckets[b]) {
      freed +=
          static_cast<int64_t>(buffer.capacity() * sizeof(float));
    }
    global.lists.buckets[b].clear();
  }
  counters().bytes_pooled.fetch_sub(freed, std::memory_order_relaxed);
}

}  // namespace timedrl::pool
