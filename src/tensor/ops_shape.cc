// Shape-manipulation operations: reshape, permute, slice, concat, broadcast.
// Shape checking and autograd wiring only — the data movement lives in
// tensor/kernels/copy.* (and reduce.* for scatter-accumulating backwards).

#include <algorithm>

#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/copy.h"
#include "tensor/kernels/reduce.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl {

Tensor Reshape(const Tensor& a, Shape shape) {
  // Resolve a single -1 dimension.
  int64_t known = 1;
  int64_t infer_at = -1;
  for (size_t d = 0; d < shape.size(); ++d) {
    if (shape[d] == -1) {
      TIMEDRL_CHECK_EQ(infer_at, -1) << "at most one -1 dim in Reshape";
      infer_at = static_cast<int64_t>(d);
    } else {
      known *= shape[d];
    }
  }
  if (infer_at >= 0) {
    TIMEDRL_CHECK(known != 0 && a.numel() % known == 0)
        << "cannot infer dim for reshape of " << ShapeToString(a.shape())
        << " to " << ShapeToString(shape);
    shape[infer_at] = a.numel() / known;
  }
  TIMEDRL_CHECK_EQ(NumElements(shape), a.numel())
      << "reshape " << ShapeToString(a.shape()) << " -> "
      << ShapeToString(shape);

  std::vector<float> out = pool::AcquireUninit(a.numel());
  std::copy(a.data().begin(), a.data().end(), out.begin());
  if (!internal::Recording(a)) {
    return internal::MakeLeafResult(std::move(shape), std::move(out));
  }
  auto a_impl = a.impl();
  auto backward = [a_impl](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    kernels::AddInto(node.grad.data(), a_impl->MutableGrad().data(),
                     static_cast<int64_t>(node.grad.size()));
  };
  return internal::MakeOpResult(std::move(shape), std::move(out), {a.impl()},
                                std::move(backward));
}

Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm) {
  TIMEDRL_TRACE_OP("permute");
  const int64_t rank = a.dim();
  TIMEDRL_CHECK_EQ(static_cast<int64_t>(perm.size()), rank);
  std::vector<bool> seen(rank, false);
  Shape out_shape(rank);
  for (int64_t d = 0; d < rank; ++d) {
    int64_t p = NormalizeDim(perm[d], rank);
    TIMEDRL_CHECK(!seen[p]) << "duplicate dim in permutation";
    seen[p] = true;
    out_shape[d] = a.size(p);
  }

  const std::vector<int64_t> in_strides = RowMajorStrides(a.shape());
  // Stride of output dim d within the input buffer.
  std::vector<int64_t> gather_strides(rank);
  for (int64_t d = 0; d < rank; ++d) {
    gather_strides[d] = in_strides[NormalizeDim(perm[d], rank)];
  }

  std::vector<float> out = pool::AcquireUninit(a.numel());
  kernels::GatherStrided(out_shape, gather_strides, a.data().data(),
                         out.data());
  if (!internal::Recording(a)) {
    return internal::MakeLeafResult(std::move(out_shape), std::move(out));
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, out_shape, gather_strides](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    // A permutation's scatter is bijective, but it reuses the shared serial
    // scatter-accumulate rather than growing a second code path.
    kernels::ReduceAddStrided(out_shape, gather_strides, node.grad.data(),
                              a_impl->MutableGrad().data());
  };
  return internal::MakeOpResult(out_shape, std::move(out), {a.impl()},
                                std::move(backward));
}

Tensor Transpose(const Tensor& a, int64_t dim0, int64_t dim1) {
  const int64_t rank = a.dim();
  dim0 = NormalizeDim(dim0, rank);
  dim1 = NormalizeDim(dim1, rank);
  std::vector<int64_t> perm(rank);
  for (int64_t d = 0; d < rank; ++d) perm[d] = d;
  std::swap(perm[dim0], perm[dim1]);
  return Permute(a, perm);
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t len) {
  TIMEDRL_TRACE_OP("slice");
  const int64_t rank = a.dim();
  dim = NormalizeDim(dim, rank);
  TIMEDRL_CHECK(start >= 0 && len >= 0 && start + len <= a.size(dim))
      << "slice [" << start << ", " << start + len << ") of dim " << dim
      << " in " << ShapeToString(a.shape());

  Shape out_shape = a.shape();
  out_shape[dim] = len;

  // Copy as [outer, len, inner] from [outer, dim_size, inner].
  int64_t outer = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= a.size(d);
  int64_t inner = 1;
  for (int64_t d = dim + 1; d < rank; ++d) inner *= a.size(d);
  const int64_t dim_size = a.size(dim);

  std::vector<float> out = pool::AcquireUninit(NumElements(out_shape));
  kernels::CopyStridedBlocks(a.data().data() + start * inner, out.data(),
                             outer, len * inner, dim_size * inner,
                             len * inner);
  if (!internal::Recording(a)) {
    return internal::MakeLeafResult(std::move(out_shape), std::move(out));
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, outer, inner, len, dim_size, start](
                      TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    kernels::AccumulateStridedBlocks(
        node.grad.data(), a_impl->MutableGrad().data() + start * inner, outer,
        len * inner, len * inner, dim_size * inner);
  };
  return internal::MakeOpResult(out_shape, std::move(out), {a.impl()},
                                std::move(backward));
}

Tensor Concat(const std::vector<Tensor>& tensors, int64_t dim) {
  TIMEDRL_TRACE_OP("concat");
  TIMEDRL_CHECK(!tensors.empty());
  const int64_t rank = tensors[0].dim();
  dim = NormalizeDim(dim, rank);

  Shape out_shape = tensors[0].shape();
  int64_t total_dim = 0;
  for (const Tensor& t : tensors) {
    TIMEDRL_CHECK_EQ(t.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != dim) {
        TIMEDRL_CHECK_EQ(t.size(d), out_shape[d])
            << "concat shape mismatch on dim " << d;
      }
    }
    total_dim += t.size(dim);
  }
  out_shape[dim] = total_dim;

  int64_t outer = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= out_shape[d];
  int64_t inner = 1;
  for (int64_t d = dim + 1; d < rank; ++d) inner *= out_shape[d];

  std::vector<float> out = pool::AcquireUninit(NumElements(out_shape));
  int64_t offset = 0;  // running position along `dim`
  for (const Tensor& t : tensors) {
    const int64_t part = t.size(dim);
    kernels::CopyStridedBlocks(t.data().data(), out.data() + offset * inner,
                               outer, part * inner, part * inner,
                               total_dim * inner);
    offset += part;
  }
  if (!internal::Recording(tensors)) {
    return internal::MakeLeafResult(std::move(out_shape), std::move(out));
  }

  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::vector<int64_t> parts;
  parents.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    parents.push_back(t.impl());
    parts.push_back(t.size(dim));
  }
  auto backward = [parents, parts, outer, inner, total_dim](TensorImpl& node) {
    int64_t offset = 0;
    for (size_t k = 0; k < parents.size(); ++k) {
      const int64_t part = parts[k];
      if (parents[k]->requires_grad) {
        kernels::AccumulateStridedBlocks(
            node.grad.data() + offset * inner,
            parents[k]->MutableGrad().data(), outer, part * inner,
            total_dim * inner, part * inner);
      }
      offset += part;
    }
  };
  return internal::MakeOpResult(out_shape, std::move(out), std::move(parents),
                                std::move(backward));
}

Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim) {
  TIMEDRL_CHECK(!tensors.empty());
  const int64_t rank = tensors[0].dim();
  TIMEDRL_CHECK(dim >= -(rank + 1) && dim <= rank);
  if (dim < 0) dim += rank + 1;
  std::vector<Tensor> expanded;
  expanded.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    Shape s = t.shape();
    s.insert(s.begin() + dim, 1);
    expanded.push_back(Reshape(t, s));
  }
  return Concat(expanded, dim);
}

Tensor BroadcastTo(const Tensor& a, const Shape& shape) {
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), shape);
  std::vector<float> out = pool::AcquireUninit(NumElements(shape));
  kernels::GatherStrided(shape, sa, a.data().data(), out.data());
  if (!internal::Recording(a)) {
    return internal::MakeLeafResult(shape, std::move(out));
  }
  auto a_impl = a.impl();
  Shape out_shape = shape;
  auto backward = [a_impl, out_shape, sa](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    kernels::ReduceAddStrided(out_shape, sa, node.grad.data(),
                              a_impl->MutableGrad().data());
  };
  return internal::MakeOpResult(out_shape, std::move(out), {a.impl()},
                                std::move(backward));
}

}  // namespace timedrl
