// Reductions and fused loss/normalization primitives: shape checking and
// autograd wiring only — the dense loops live in tensor/kernels/reduce.*.

#include <vector>

#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/nonfinite.h"
#include "tensor/kernels/reduce.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl {
namespace {

// Splits `shape` around `dim` into [outer, dim_size, inner].
void OuterInner(const Shape& shape, int64_t dim, int64_t* outer,
                int64_t* dim_size, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t d = 0; d < dim; ++d) *outer *= shape[d];
  *dim_size = shape[dim];
  for (int64_t d = dim + 1; d < static_cast<int64_t>(shape.size()); ++d) {
    *inner *= shape[d];
  }
}

// Sum over `dims`, always keeping reduced dims as size 1.
Tensor SumKeepdim(const Tensor& a, const std::vector<int64_t>& dims) {
  TIMEDRL_TRACE_OP("sum");
  Shape out_shape = a.shape();
  for (int64_t dim : dims) out_shape[NormalizeDim(dim, a.dim())] = 1;

  // Reading the size-1 output with strides broadcast to the input shape maps
  // every input element to its accumulator slot.
  const std::vector<int64_t> acc_strides =
      BroadcastStrides(out_shape, a.shape());

  // Zero-filled: ReduceAddStrided accumulates into its output.
  std::vector<float> out = pool::Acquire(NumElements(out_shape));
  kernels::ReduceAddStrided(a.shape(), acc_strides, a.data().data(),
                            out.data());
  if (!internal::Recording(a)) {
    return internal::MakeLeafResult(std::move(out_shape), std::move(out));
  }

  auto a_impl = a.impl();
  Shape in_shape = a.shape();
  auto backward = [a_impl, in_shape, acc_strides](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    kernels::BroadcastAddStrided(in_shape, acc_strides, node.grad.data(),
                                 a_impl->MutableGrad().data());
  };
  return internal::MakeOpResult(std::move(out_shape), std::move(out),
                                {a.impl()}, std::move(backward));
}

Shape DropDims(const Shape& shape, const std::vector<int64_t>& dims,
               int64_t rank) {
  std::vector<bool> drop(rank, false);
  for (int64_t dim : dims) drop[NormalizeDim(dim, rank)] = true;
  Shape out;
  for (int64_t d = 0; d < rank; ++d) {
    if (!drop[d]) out.push_back(shape[d]);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

Tensor Sum(const Tensor& a) {
  std::vector<int64_t> dims(a.dim());
  for (int64_t d = 0; d < a.dim(); ++d) dims[d] = d;
  return Sum(a, dims, /*keepdim=*/false);
}

Tensor Sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  Tensor kept = SumKeepdim(a, dims);
  if (keepdim) return kept;
  return Reshape(kept, DropDims(kept.shape(), dims, a.dim()));
}

Tensor Mean(const Tensor& a) {
  return Mul(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor Mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  int64_t count = 1;
  for (int64_t dim : dims) count *= a.size(dim);
  return Mul(Sum(a, std::move(dims), keepdim),
             1.0f / static_cast<float>(count));
}

Tensor Max(const Tensor& a, int64_t dim, bool keepdim) {
  TIMEDRL_TRACE_OP("max");
  const int64_t rank = a.dim();
  dim = NormalizeDim(dim, rank);
  int64_t outer, dim_size, inner;
  OuterInner(a.shape(), dim, &outer, &dim_size, &inner);
  TIMEDRL_CHECK_GT(dim_size, 0);

  Shape out_shape = a.shape();
  out_shape[dim] = 1;
  std::vector<float> out = pool::AcquireUninit(outer * inner);
  std::vector<int64_t> argmax(outer * inner);
  kernels::MaxForward(a.data().data(), out.data(), argmax.data(), outer,
                      dim_size, inner);

  Tensor kept;
  if (!internal::Recording(a)) {
    kept = internal::MakeLeafResult(std::move(out_shape), std::move(out));
  } else {
    auto a_impl = a.impl();
    auto backward = [a_impl, argmax, outer, inner,
                     dim_size](TensorImpl& node) {
      if (!a_impl->requires_grad) return;
      kernels::MaxBackwardAccumulate(node.grad.data(), argmax.data(),
                                     a_impl->MutableGrad().data(), outer,
                                     dim_size, inner);
    };
    kept = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                  {a.impl()}, std::move(backward));
  }
  if (keepdim) return kept;
  return Reshape(kept, DropDims(kept.shape(), {dim}, rank));
}

std::vector<int64_t> ArgMax(const Tensor& a, int64_t dim) {
  const int64_t rank = a.dim();
  dim = NormalizeDim(dim, rank);
  int64_t outer, dim_size, inner;
  OuterInner(a.shape(), dim, &outer, &dim_size, &inner);
  std::vector<int64_t> result(outer * inner, 0);
  kernels::ArgMaxForward(a.data().data(), result.data(), outer, dim_size,
                         inner);
  return result;
}

int64_t CountNonFinite(const Tensor& a) {
  return kernels::CountNonFinite(a.data().data(), a.numel());
}

Tensor Softmax(const Tensor& a, int64_t dim) {
  TIMEDRL_TRACE_OP("softmax");
  const int64_t rank = a.dim();
  dim = NormalizeDim(dim, rank);
  int64_t outer, dim_size, inner;
  OuterInner(a.shape(), dim, &outer, &dim_size, &inner);

  std::vector<float> out = pool::AcquireUninit(a.numel());
  kernels::SoftmaxForward(a.data().data(), out.data(), outer, dim_size, inner);
  if (!internal::Recording(a)) {
    return internal::MakeLeafResult(a.shape(), std::move(out));
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, outer, inner, dim_size](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    kernels::SoftmaxBackwardAccumulate(node.grad.data(), node.data.data(),
                                       a_impl->MutableGrad().data(), outer,
                                       dim_size, inner);
  };
  return internal::MakeOpResult(a.shape(), std::move(out), {a.impl()},
                                std::move(backward));
}

Tensor LogSoftmax(const Tensor& a, int64_t dim) {
  TIMEDRL_TRACE_OP("log_softmax");
  const int64_t rank = a.dim();
  dim = NormalizeDim(dim, rank);
  int64_t outer, dim_size, inner;
  OuterInner(a.shape(), dim, &outer, &dim_size, &inner);

  std::vector<float> out = pool::AcquireUninit(a.numel());
  kernels::LogSoftmaxForward(a.data().data(), out.data(), outer, dim_size,
                             inner);
  if (!internal::Recording(a)) {
    return internal::MakeLeafResult(a.shape(), std::move(out));
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, outer, inner, dim_size](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    kernels::LogSoftmaxBackwardAccumulate(node.grad.data(), node.data.data(),
                                          a_impl->MutableGrad().data(), outer,
                                          dim_size, inner);
  };
  return internal::MakeOpResult(a.shape(), std::move(out), {a.impl()},
                                std::move(backward));
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int64_t>& labels) {
  TIMEDRL_TRACE_OP("cross_entropy");
  TIMEDRL_CHECK_EQ(logits.dim(), 2);
  const int64_t n = logits.size(0);
  const int64_t num_classes = logits.size(1);
  TIMEDRL_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  for (int64_t label : labels) {
    TIMEDRL_CHECK(label >= 0 && label < num_classes)
        << "label " << label << " outside [0, " << num_classes << ")";
  }
  Tensor log_probs = LogSoftmax(logits, 1);

  const float loss = kernels::NllForward(log_probs.data().data(),
                                         labels.data(), n, num_classes);
  if (!internal::Recording(log_probs)) {
    return internal::MakeLeafResult({1}, {loss});
  }

  auto lp_impl = log_probs.impl();
  auto backward = [lp_impl, labels, n, num_classes](TensorImpl& node) {
    if (!lp_impl->requires_grad) return;
    kernels::NllBackwardAccumulate(node.grad[0], labels.data(),
                                   lp_impl->MutableGrad().data(), n,
                                   num_classes);
  };
  return internal::MakeOpResult({1}, {loss}, {log_probs.impl()},
                                std::move(backward));
}

Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  TIMEDRL_TRACE_OP("mse_loss");
  TIMEDRL_CHECK(prediction.shape() == target.shape())
      << "MseLoss shapes " << ShapeToString(prediction.shape()) << " vs "
      << ShapeToString(target.shape());
  Tensor diff = Sub(prediction, target);
  return Mean(Mul(diff, diff));
}

Tensor L1Loss(const Tensor& prediction, const Tensor& target) {
  TIMEDRL_CHECK(prediction.shape() == target.shape());
  return Mean(Abs(Sub(prediction, target)));
}

}  // namespace timedrl
