// Reductions and fused loss/normalization primitives.

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/broadcast_iter.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl {
namespace {

// Splits `shape` around `dim` into [outer, dim_size, inner].
void OuterInner(const Shape& shape, int64_t dim, int64_t* outer,
                int64_t* dim_size, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t d = 0; d < dim; ++d) *outer *= shape[d];
  *dim_size = shape[dim];
  for (int64_t d = dim + 1; d < static_cast<int64_t>(shape.size()); ++d) {
    *inner *= shape[d];
  }
}

// Sum over `dims`, always keeping reduced dims as size 1.
Tensor SumKeepdim(const Tensor& a, const std::vector<int64_t>& dims) {
  Shape out_shape = a.shape();
  for (int64_t dim : dims) out_shape[NormalizeDim(dim, a.dim())] = 1;

  // Reading the size-1 output with strides broadcast to the input shape maps
  // every input element to its accumulator slot.
  const std::vector<int64_t> acc_strides =
      BroadcastStrides(out_shape, a.shape());

  std::vector<float> out(NumElements(out_shape), 0.0f);
  const std::vector<float>& da = a.data();
  internal::ForEachBroadcast1(
      a.shape(), acc_strides,
      [&](int64_t i, int64_t slot) { out[slot] += da[i]; });

  auto a_impl = a.impl();
  Shape in_shape = a.shape();
  auto backward = [a_impl, in_shape, acc_strides](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    std::vector<float>& ga = a_impl->MutableGrad();
    const std::vector<float>& g = node.grad;
    internal::ForEachBroadcast1(
        in_shape, acc_strides,
        [&](int64_t i, int64_t slot) { ga[i] += g[slot]; });
  };
  return internal::MakeOpResult(std::move(out_shape), std::move(out),
                                {a.impl()}, std::move(backward));
}

Shape DropDims(const Shape& shape, const std::vector<int64_t>& dims,
               int64_t rank) {
  std::vector<bool> drop(rank, false);
  for (int64_t dim : dims) drop[NormalizeDim(dim, rank)] = true;
  Shape out;
  for (int64_t d = 0; d < rank; ++d) {
    if (!drop[d]) out.push_back(shape[d]);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

Tensor Sum(const Tensor& a) {
  std::vector<int64_t> dims(a.dim());
  for (int64_t d = 0; d < a.dim(); ++d) dims[d] = d;
  return Sum(a, dims, /*keepdim=*/false);
}

Tensor Sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  Tensor kept = SumKeepdim(a, dims);
  if (keepdim) return kept;
  return Reshape(kept, DropDims(kept.shape(), dims, a.dim()));
}

Tensor Mean(const Tensor& a) {
  return Mul(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor Mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  int64_t count = 1;
  for (int64_t dim : dims) count *= a.size(dim);
  return Mul(Sum(a, std::move(dims), keepdim),
             1.0f / static_cast<float>(count));
}

Tensor Max(const Tensor& a, int64_t dim, bool keepdim) {
  const int64_t rank = a.dim();
  dim = NormalizeDim(dim, rank);
  int64_t outer, dim_size, inner;
  OuterInner(a.shape(), dim, &outer, &dim_size, &inner);
  TIMEDRL_CHECK_GT(dim_size, 0);

  Shape out_shape = a.shape();
  out_shape[dim] = 1;
  std::vector<float> out(outer * inner);
  std::vector<int64_t> argmax(outer * inner);
  const std::vector<float>& da = a.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      float best = -std::numeric_limits<float>::infinity();
      int64_t best_index = 0;
      for (int64_t d = 0; d < dim_size; ++d) {
        float v = da[(o * dim_size + d) * inner + i];
        if (v > best) {
          best = v;
          best_index = d;
        }
      }
      out[o * inner + i] = best;
      argmax[o * inner + i] = best_index;
    }
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, argmax, outer, inner, dim_size](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    std::vector<float>& ga = a_impl->MutableGrad();
    const std::vector<float>& g = node.grad;
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        int64_t d = argmax[o * inner + i];
        ga[(o * dim_size + d) * inner + i] += g[o * inner + i];
      }
    }
  };
  Tensor kept = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                       {a.impl()}, std::move(backward));
  if (keepdim) return kept;
  return Reshape(kept, DropDims(kept.shape(), {dim}, rank));
}

std::vector<int64_t> ArgMax(const Tensor& a, int64_t dim) {
  const int64_t rank = a.dim();
  dim = NormalizeDim(dim, rank);
  int64_t outer, dim_size, inner;
  OuterInner(a.shape(), dim, &outer, &dim_size, &inner);
  std::vector<int64_t> result(outer * inner, 0);
  const std::vector<float>& da = a.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      float best = -std::numeric_limits<float>::infinity();
      for (int64_t d = 0; d < dim_size; ++d) {
        float v = da[(o * dim_size + d) * inner + i];
        if (v > best) {
          best = v;
          result[o * inner + i] = d;
        }
      }
    }
  }
  return result;
}

Tensor Softmax(const Tensor& a, int64_t dim) {
  const int64_t rank = a.dim();
  dim = NormalizeDim(dim, rank);
  int64_t outer, dim_size, inner;
  OuterInner(a.shape(), dim, &outer, &dim_size, &inner);

  std::vector<float> out(a.numel());
  const std::vector<float>& da = a.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      float max_value = -std::numeric_limits<float>::infinity();
      for (int64_t d = 0; d < dim_size; ++d) {
        max_value = std::max(max_value, da[(o * dim_size + d) * inner + i]);
      }
      float denom = 0.0f;
      for (int64_t d = 0; d < dim_size; ++d) {
        int64_t idx = (o * dim_size + d) * inner + i;
        out[idx] = std::exp(da[idx] - max_value);
        denom += out[idx];
      }
      for (int64_t d = 0; d < dim_size; ++d) {
        out[(o * dim_size + d) * inner + i] /= denom;
      }
    }
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, outer, inner, dim_size](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    std::vector<float>& ga = a_impl->MutableGrad();
    const std::vector<float>& g = node.grad;
    const std::vector<float>& y = node.data;
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        float dot = 0.0f;
        for (int64_t d = 0; d < dim_size; ++d) {
          int64_t idx = (o * dim_size + d) * inner + i;
          dot += g[idx] * y[idx];
        }
        for (int64_t d = 0; d < dim_size; ++d) {
          int64_t idx = (o * dim_size + d) * inner + i;
          ga[idx] += y[idx] * (g[idx] - dot);
        }
      }
    }
  };
  return internal::MakeOpResult(a.shape(), std::move(out), {a.impl()},
                                std::move(backward));
}

Tensor LogSoftmax(const Tensor& a, int64_t dim) {
  const int64_t rank = a.dim();
  dim = NormalizeDim(dim, rank);
  int64_t outer, dim_size, inner;
  OuterInner(a.shape(), dim, &outer, &dim_size, &inner);

  std::vector<float> out(a.numel());
  const std::vector<float>& da = a.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      float max_value = -std::numeric_limits<float>::infinity();
      for (int64_t d = 0; d < dim_size; ++d) {
        max_value = std::max(max_value, da[(o * dim_size + d) * inner + i]);
      }
      float denom = 0.0f;
      for (int64_t d = 0; d < dim_size; ++d) {
        denom += std::exp(da[(o * dim_size + d) * inner + i] - max_value);
      }
      const float log_denom = max_value + std::log(denom);
      for (int64_t d = 0; d < dim_size; ++d) {
        int64_t idx = (o * dim_size + d) * inner + i;
        out[idx] = da[idx] - log_denom;
      }
    }
  }

  auto a_impl = a.impl();
  auto backward = [a_impl, outer, inner, dim_size](TensorImpl& node) {
    if (!a_impl->requires_grad) return;
    std::vector<float>& ga = a_impl->MutableGrad();
    const std::vector<float>& g = node.grad;
    const std::vector<float>& y = node.data;  // log-probabilities
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        float g_sum = 0.0f;
        for (int64_t d = 0; d < dim_size; ++d) {
          g_sum += g[(o * dim_size + d) * inner + i];
        }
        for (int64_t d = 0; d < dim_size; ++d) {
          int64_t idx = (o * dim_size + d) * inner + i;
          ga[idx] += g[idx] - std::exp(y[idx]) * g_sum;
        }
      }
    }
  };
  return internal::MakeOpResult(a.shape(), std::move(out), {a.impl()},
                                std::move(backward));
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int64_t>& labels) {
  TIMEDRL_CHECK_EQ(logits.dim(), 2);
  const int64_t n = logits.size(0);
  const int64_t num_classes = logits.size(1);
  TIMEDRL_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  for (int64_t label : labels) {
    TIMEDRL_CHECK(label >= 0 && label < num_classes)
        << "label " << label << " outside [0, " << num_classes << ")";
  }
  Tensor log_probs = LogSoftmax(logits, 1);

  // Gather -log p[label] and average; fused gather keeps this simple.
  const std::vector<float>& lp = log_probs.data();
  float loss = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    loss -= lp[i * num_classes + labels[i]];
  }
  loss /= static_cast<float>(n);

  auto lp_impl = log_probs.impl();
  auto backward = [lp_impl, labels, n, num_classes](TensorImpl& node) {
    if (!lp_impl->requires_grad) return;
    std::vector<float>& g_lp = lp_impl->MutableGrad();
    const float g = node.grad[0];
    for (int64_t i = 0; i < n; ++i) {
      g_lp[i * num_classes + labels[i]] -= g / static_cast<float>(n);
    }
  };
  return internal::MakeOpResult({1}, {loss}, {log_probs.impl()},
                                std::move(backward));
}

Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  TIMEDRL_CHECK(prediction.shape() == target.shape())
      << "MseLoss shapes " << ShapeToString(prediction.shape()) << " vs "
      << ShapeToString(target.shape());
  Tensor diff = Sub(prediction, target);
  return Mean(Mul(diff, diff));
}

Tensor L1Loss(const Tensor& prediction, const Tensor& target) {
  TIMEDRL_CHECK(prediction.shape() == target.shape());
  return Mean(Abs(Sub(prediction, target)));
}

}  // namespace timedrl
