// Evaluation metrics (paper Eq. 20-27).

#ifndef TIMEDRL_METRICS_METRICS_H_
#define TIMEDRL_METRICS_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace timedrl::metrics {

/// Mean squared error over all elements (Eq. 20).
double Mse(const Tensor& prediction, const Tensor& target);

/// Mean absolute error over all elements (Eq. 21).
double Mae(const Tensor& prediction, const Tensor& target);

/// Row-major [num_classes x num_classes] confusion matrix;
/// entry (i, j) counts true class i predicted as j.
std::vector<int64_t> ConfusionMatrix(const std::vector<int64_t>& predictions,
                                     const std::vector<int64_t>& labels,
                                     int64_t num_classes);

/// Fraction of correct predictions (Eq. 22).
double Accuracy(const std::vector<int64_t>& predictions,
                const std::vector<int64_t>& labels);

/// Macro-averaged F1: per-class F1 averaged over classes (Eq. 23-25).
/// Classes absent from both predictions and labels contribute F1 = 0.
double MacroF1(const std::vector<int64_t>& predictions,
               const std::vector<int64_t>& labels, int64_t num_classes);

/// Cohen's kappa via the multi-class chance-agreement formula (Eq. 26-27).
double CohenKappa(const std::vector<int64_t>& predictions,
                  const std::vector<int64_t>& labels, int64_t num_classes);

}  // namespace timedrl::metrics

#endif  // TIMEDRL_METRICS_METRICS_H_
