#include "metrics/metrics.h"

#include <cmath>

#include "util/check.h"

namespace timedrl::metrics {

double Mse(const Tensor& prediction, const Tensor& target) {
  TIMEDRL_CHECK(prediction.shape() == target.shape());
  const std::vector<float>& p = prediction.data();
  const std::vector<float>& t = target.data();
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double d = double{p[i]} - double{t[i]};
    total += d * d;
  }
  return p.empty() ? 0.0 : total / static_cast<double>(p.size());
}

double Mae(const Tensor& prediction, const Tensor& target) {
  TIMEDRL_CHECK(prediction.shape() == target.shape());
  const std::vector<float>& p = prediction.data();
  const std::vector<float>& t = target.data();
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    total += std::fabs(double{p[i]} - double{t[i]});
  }
  return p.empty() ? 0.0 : total / static_cast<double>(p.size());
}

std::vector<int64_t> ConfusionMatrix(const std::vector<int64_t>& predictions,
                                     const std::vector<int64_t>& labels,
                                     int64_t num_classes) {
  TIMEDRL_CHECK_EQ(predictions.size(), labels.size());
  std::vector<int64_t> matrix(num_classes * num_classes, 0);
  for (size_t i = 0; i < labels.size(); ++i) {
    TIMEDRL_CHECK(labels[i] >= 0 && labels[i] < num_classes);
    TIMEDRL_CHECK(predictions[i] >= 0 && predictions[i] < num_classes);
    ++matrix[labels[i] * num_classes + predictions[i]];
  }
  return matrix;
}

double Accuracy(const std::vector<int64_t>& predictions,
                const std::vector<int64_t>& labels) {
  TIMEDRL_CHECK_EQ(predictions.size(), labels.size());
  TIMEDRL_CHECK(!labels.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double MacroF1(const std::vector<int64_t>& predictions,
               const std::vector<int64_t>& labels, int64_t num_classes) {
  const std::vector<int64_t> cm =
      ConfusionMatrix(predictions, labels, num_classes);
  double f1_total = 0.0;
  for (int64_t k = 0; k < num_classes; ++k) {
    int64_t tp = cm[k * num_classes + k];
    int64_t fp = 0;
    int64_t fn = 0;
    for (int64_t j = 0; j < num_classes; ++j) {
      if (j == k) continue;
      fp += cm[j * num_classes + k];  // predicted k, true j
      fn += cm[k * num_classes + j];  // true k, predicted j
    }
    const double denominator = 2.0 * tp + fp + fn;
    f1_total += denominator > 0 ? 2.0 * tp / denominator : 0.0;
  }
  return f1_total / static_cast<double>(num_classes);
}

double CohenKappa(const std::vector<int64_t>& predictions,
                  const std::vector<int64_t>& labels, int64_t num_classes) {
  const std::vector<int64_t> cm =
      ConfusionMatrix(predictions, labels, num_classes);
  const double n = static_cast<double>(labels.size());
  TIMEDRL_CHECK_GT(n, 0);
  double observed = 0.0;
  double expected = 0.0;
  for (int64_t k = 0; k < num_classes; ++k) {
    observed += cm[k * num_classes + k];
    double row_total = 0.0;  // true class k count
    double col_total = 0.0;  // predicted class k count
    for (int64_t j = 0; j < num_classes; ++j) {
      row_total += cm[k * num_classes + j];
      col_total += cm[j * num_classes + k];
    }
    expected += row_total * col_total;
  }
  observed /= n;
  expected /= n * n;
  if (expected >= 1.0) return 0.0;  // degenerate single-class case
  return (observed - expected) / (1.0 - expected);
}

}  // namespace timedrl::metrics
