// Time-series data augmentations.
//
// TimeDRL deliberately uses NO augmentation; these six transforms exist only
// to reproduce the paper's Table VI ablation, which quantifies the inductive
// bias each one introduces. All operate on [B, T, C] batches and return new
// (non-differentiable) tensors: they are applied to raw inputs before the
// model, as the baselines do.

#ifndef TIMEDRL_AUGMENT_AUGMENT_H_
#define TIMEDRL_AUGMENT_AUGMENT_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace timedrl::augment {

/// The paper's Table VI augmentations. kNone is TimeDRL's default.
enum class Kind {
  kNone,
  kJitter,       // additive Gaussian noise
  kScaling,      // multiply by one random scalar per (sample, channel)
  kRotation,     // permute channels and randomly flip signs
  kPermutation,  // slice into segments and shuffle them in time
  kMasking,      // zero out random timesteps
  kCropping,     // zero out the left/right margins
};

/// Display name matching the paper's rows ("Jitter", "Scaling", ...).
std::string KindName(Kind kind);

/// All kinds including kNone, in the paper's Table VI order.
std::vector<Kind> AllKinds();

/// Hyperparameters for the individual transforms.
struct AugmentConfig {
  float jitter_sigma = 0.1f;
  float scaling_sigma = 0.3f;
  int64_t permutation_segments = 4;
  float masking_ratio = 0.15f;
  float cropping_ratio = 0.25f;  // total fraction zeroed at the two ends
};

/// Applies `kind` to a [B, T, C] batch. kNone returns the input unchanged.
Tensor Apply(Kind kind, const Tensor& batch, const AugmentConfig& config,
             Rng& rng);

// Individual transforms (exposed for tests).
Tensor Jitter(const Tensor& batch, float sigma, Rng& rng);
Tensor Scaling(const Tensor& batch, float sigma, Rng& rng);
Tensor Rotation(const Tensor& batch, Rng& rng);
Tensor Permutation(const Tensor& batch, int64_t max_segments, Rng& rng);
Tensor Masking(const Tensor& batch, float ratio, Rng& rng);
Tensor Cropping(const Tensor& batch, float ratio, Rng& rng);

}  // namespace timedrl::augment

#endif  // TIMEDRL_AUGMENT_AUGMENT_H_
