#include "augment/augment.h"

#include <algorithm>

#include "util/check.h"

namespace timedrl::augment {
namespace {

// Checks the batch is [B, T, C] and returns its dims.
void BatchDims(const Tensor& batch, int64_t* b, int64_t* t, int64_t* c) {
  TIMEDRL_CHECK_EQ(batch.dim(), 3) << "augmentations expect [B, T, C]";
  *b = batch.size(0);
  *t = batch.size(1);
  *c = batch.size(2);
}

}  // namespace

std::string KindName(Kind kind) {
  switch (kind) {
    case Kind::kNone:
      return "None";
    case Kind::kJitter:
      return "Jitter";
    case Kind::kScaling:
      return "Scaling";
    case Kind::kRotation:
      return "Rotation";
    case Kind::kPermutation:
      return "Permutation";
    case Kind::kMasking:
      return "Masking";
    case Kind::kCropping:
      return "Cropping";
  }
  return "?";
}

std::vector<Kind> AllKinds() {
  return {Kind::kNone,        Kind::kJitter,  Kind::kScaling,
          Kind::kRotation,    Kind::kPermutation, Kind::kMasking,
          Kind::kCropping};
}

Tensor Apply(Kind kind, const Tensor& batch, const AugmentConfig& config,
             Rng& rng) {
  switch (kind) {
    case Kind::kNone:
      return batch;
    case Kind::kJitter:
      return Jitter(batch, config.jitter_sigma, rng);
    case Kind::kScaling:
      return Scaling(batch, config.scaling_sigma, rng);
    case Kind::kRotation:
      return Rotation(batch, rng);
    case Kind::kPermutation:
      return Permutation(batch, config.permutation_segments, rng);
    case Kind::kMasking:
      return Masking(batch, config.masking_ratio, rng);
    case Kind::kCropping:
      return Cropping(batch, config.cropping_ratio, rng);
  }
  TIMEDRL_CHECK(false) << "unknown augmentation";
  return batch;
}

Tensor Jitter(const Tensor& batch, float sigma, Rng& rng) {
  std::vector<float> out = batch.data();
  for (float& v : out) v += rng.Normal(0.0f, sigma);
  return Tensor::FromVector(batch.shape(), std::move(out));
}

Tensor Scaling(const Tensor& batch, float sigma, Rng& rng) {
  int64_t b, t, c;
  BatchDims(batch, &b, &t, &c);
  std::vector<float> out = batch.data();
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      const float factor = rng.Normal(1.0f, sigma);
      for (int64_t k = 0; k < t; ++k) out[(i * t + k) * c + j] *= factor;
    }
  }
  return Tensor::FromVector(batch.shape(), std::move(out));
}

Tensor Rotation(const Tensor& batch, Rng& rng) {
  int64_t b, t, c;
  BatchDims(batch, &b, &t, &c);
  const std::vector<float>& in = batch.data();
  std::vector<float> out(in.size());
  for (int64_t i = 0; i < b; ++i) {
    const std::vector<int64_t> perm = rng.Permutation(c);
    std::vector<float> sign(c);
    for (int64_t j = 0; j < c; ++j) sign[j] = rng.Bernoulli(0.5f) ? -1.0f : 1.0f;
    for (int64_t k = 0; k < t; ++k) {
      for (int64_t j = 0; j < c; ++j) {
        out[(i * t + k) * c + j] = sign[j] * in[(i * t + k) * c + perm[j]];
      }
    }
  }
  return Tensor::FromVector(batch.shape(), std::move(out));
}

Tensor Permutation(const Tensor& batch, int64_t max_segments, Rng& rng) {
  int64_t b, t, c;
  BatchDims(batch, &b, &t, &c);
  TIMEDRL_CHECK_GE(max_segments, 2);
  const std::vector<float>& in = batch.data();
  std::vector<float> out(in.size());
  for (int64_t i = 0; i < b; ++i) {
    const int64_t segments =
        std::min<int64_t>(rng.UniformInt(2, max_segments), t);
    // Equal-ish segment boundaries, then shuffled order.
    std::vector<int64_t> bounds(segments + 1);
    for (int64_t s = 0; s <= segments; ++s) bounds[s] = s * t / segments;
    std::vector<int64_t> order = rng.Permutation(segments);
    int64_t write = 0;
    for (int64_t s = 0; s < segments; ++s) {
      for (int64_t k = bounds[order[s]]; k < bounds[order[s] + 1]; ++k) {
        for (int64_t j = 0; j < c; ++j) {
          out[(i * t + write) * c + j] = in[(i * t + k) * c + j];
        }
        ++write;
      }
    }
  }
  return Tensor::FromVector(batch.shape(), std::move(out));
}

Tensor Masking(const Tensor& batch, float ratio, Rng& rng) {
  int64_t b, t, c;
  BatchDims(batch, &b, &t, &c);
  std::vector<float> out = batch.data();
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t k = 0; k < t; ++k) {
      if (rng.Bernoulli(ratio)) {
        for (int64_t j = 0; j < c; ++j) out[(i * t + k) * c + j] = 0.0f;
      }
    }
  }
  return Tensor::FromVector(batch.shape(), std::move(out));
}

Tensor Cropping(const Tensor& batch, float ratio, Rng& rng) {
  int64_t b, t, c;
  BatchDims(batch, &b, &t, &c);
  std::vector<float> out = batch.data();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t total = static_cast<int64_t>(ratio * t);
    const int64_t left = total > 0 ? rng.UniformInt(0, total) : 0;
    const int64_t right = total - left;
    for (int64_t k = 0; k < left; ++k) {
      for (int64_t j = 0; j < c; ++j) out[(i * t + k) * c + j] = 0.0f;
    }
    for (int64_t k = t - right; k < t; ++k) {
      for (int64_t j = 0; j < c; ++j) out[(i * t + k) * c + j] = 0.0f;
    }
  }
  return Tensor::FromVector(batch.shape(), std::move(out));
}

}  // namespace timedrl::augment
