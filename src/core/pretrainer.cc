#include "core/pretrainer.h"

#include "data/loader.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "util/check.h"

namespace timedrl::core {

PretrainHistory Pretrain(TimeDrlModel* model,
                         const UnlabeledWindowSource& source,
                         const PretrainConfig& config, Rng& rng) {
  TIMEDRL_CHECK(model != nullptr);
  TIMEDRL_CHECK_GT(source.size(), 0) << "empty pre-training source";
  const TrainConfig& train = config.train;

  optim::AdamW optimizer(model->Parameters(), train.learning_rate,
                         train.weight_decay);
  data::BatchIterator batches(source.size(), train.batch_size,
                              /*shuffle=*/true, rng, /*drop_last=*/false);
  Rng augment_rng = rng.Fork();

  PretrainHistory history;
  model->Train();
  std::vector<int64_t> indices;
  for (int64_t epoch = 0; epoch < train.epochs; ++epoch) {
    TIMEDRL_TRACE_SCOPE_CAT("pretrain/epoch", "train");
    double total = 0.0;
    double predictive = 0.0;
    double contrastive = 0.0;
    double grad_norm_sum = 0.0;
    int64_t steps = 0;
    batches.Reset();
    while (batches.Next(&indices)) {
      // BatchNorm in the contrastive head needs at least two samples.
      if (static_cast<int64_t>(indices.size()) < 2) continue;
      TIMEDRL_TRACE_SCOPE_CAT("pretrain/step", "train");
      Tensor x = source.GetWindows(indices);
      TimeDrlModel::PretextOutput output;
      if (config.augmentation != augment::Kind::kNone) {
        // Ablation path: the augmentation creates the two views (each draw
        // is independent), injecting its transformation-invariance into the
        // contrastive task — exactly the inductive bias TimeDRL avoids.
        Tensor view1 = augment::Apply(config.augmentation, x,
                                      config.augment_config, augment_rng);
        Tensor view2 = augment::Apply(config.augmentation, x,
                                      config.augment_config, augment_rng);
        output = model->PretextStepViews(view1, view2);
      } else {
        output = model->PretextStep(x);
      }
      optimizer.ZeroGrad();
      output.total.Backward();
      const float grad_norm =
          optim::ClipGradNorm(optimizer.parameters(), train.clip_norm);
      optimizer.Step();

      const double loss = output.total.item();
      total += loss;
      predictive += output.predictive.item();
      contrastive += output.contrastive.item();
      grad_norm_sum += grad_norm;
      if (train.observer != nullptr) {
        obs::StepStats step_stats;
        step_stats.epoch = epoch;
        step_stats.step = steps;
        step_stats.batch_size = static_cast<int64_t>(indices.size());
        step_stats.loss = loss;
        step_stats.grad_norm = grad_norm;
        step_stats.learning_rate = train.learning_rate;
        train.observer->OnStep(step_stats);
      }
      ++steps;
    }
    TIMEDRL_CHECK_GT(steps, 0) << "no usable batches";
    history.total.push_back(total / steps);
    history.predictive.push_back(predictive / steps);
    history.contrastive.push_back(contrastive / steps);
    if (train.observer != nullptr) {
      obs::EpochStats epoch_stats;
      epoch_stats.phase = "pretrain";
      epoch_stats.loss_label = "L";
      epoch_stats.epoch = epoch;
      epoch_stats.num_epochs = train.epochs;
      epoch_stats.steps = steps;
      epoch_stats.loss = history.total.back();
      epoch_stats.grad_norm = grad_norm_sum / steps;
      epoch_stats.learning_rate = train.learning_rate;
      epoch_stats.extra = {{"L_P", history.predictive.back()},
                           {"L_C", history.contrastive.back()}};
      train.observer->OnEpochEnd(epoch_stats);
    }
  }
  model->Eval();
  return history;
}

}  // namespace timedrl::core
