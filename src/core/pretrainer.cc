#include "core/pretrainer.h"

#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "core/anomaly_guard.h"
#include "core/checkpoint.h"
#include "data/loader.h"
#include "obs/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "util/check.h"
#include "util/fault_inject.h"

namespace timedrl::core {

PretrainHistory Pretrain(TimeDrlModel* model,
                         const UnlabeledWindowSource& source,
                         const PretrainConfig& config, Rng& rng) {
  TIMEDRL_CHECK(model != nullptr);
  TIMEDRL_CHECK_GT(source.size(), 0) << "empty pre-training source";
  const TrainConfig& train = config.train;

  optim::AdamW optimizer(model->Parameters(), train.learning_rate,
                         train.weight_decay);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = train.batch_size;
  loader_options.shuffle = true;
  loader_options.prefetch_depth = train.prefetch_depth;
  // Ablation path (Table VI): the loader assembles the two augmented views
  // alongside x, off the compute thread when prefetching. kNone — TimeDRL
  // proper — leaves the views undefined.
  loader_options.augmentation = config.augmentation;
  loader_options.augment_config = config.augment_config;
  data::DataLoader loader(source, loader_options, rng);

  std::unique_ptr<CheckpointManager> checkpoints;
  if (!train.checkpoint.directory.empty()) {
    checkpoints = std::make_unique<CheckpointManager>(
        train.checkpoint.directory, train.checkpoint.keep_last);
  }
  AnomalyGuard guard(train.anomaly);

  PretrainHistory history;
  int64_t epoch = 0;
  int64_t global_step = 0;
  float learning_rate = train.learning_rate;

  // Snapshot the full loop state for a checkpoint written after `epoch`
  // completed epochs.
  auto capture = [&]() {
    TrainingState state;
    state.epoch = epoch;
    state.global_step = global_step;
    state.learning_rate = learning_rate;
    state.optimizer = optimizer.GetState();
    state.SetLoaderState(loader.CaptureState());
    state.history = {{"total", history.total},
                     {"predictive", history.predictive},
                     {"contrastive", history.contrastive}};
    return state;
  };

  // Re-aligns the loop with a restored checkpoint (model parameters and
  // module-internal state were already applied by the checkpoint loader).
  auto restore = [&](const TrainingState& state) {
    Status status = optimizer.SetState(state.optimizer);
    TIMEDRL_CHECK(status.ok()) << status.ToString();
    data::DataLoader::State loader_state;
    TIMEDRL_CHECK(state.GetLoaderState(&loader_state))
        << "checkpoint is missing the data-loader RNG streams";
    // Cancels any prefetched batches from the abandoned epoch and rewinds
    // both streams; the loop-top Reset() then replays the captured order.
    TIMEDRL_CHECK(loader.RestoreState(loader_state))
        << "malformed data-loader RNG stream in checkpoint";
    epoch = state.epoch;
    global_step = state.global_step;
    learning_rate = state.learning_rate;
    optimizer.set_learning_rate(learning_rate);
    history.total.clear();
    history.predictive.clear();
    history.contrastive.clear();
    for (const auto& [name, series] : state.history) {
      if (name == "total") history.total = series;
      if (name == "predictive") history.predictive = series;
      if (name == "contrastive") history.contrastive = series;
    }
  };

  auto save_checkpoint = [&]() {
    if (checkpoints == nullptr) return;
    Status status = checkpoints->Save(*model, capture());
    if (status.ok()) {
      static obs::Counter& saves =
          obs::Registry::Global().GetCounter("train.checkpoint.saves");
      saves.Increment();
    } else {
      TIMEDRL_LOG_WARNING << "checkpoint save failed: " << status.ToString();
    }
  };

  if (checkpoints != nullptr && train.checkpoint.resume) {
    TrainingState state;
    Status status = checkpoints->LoadLatest(model, &state);
    if (status.ok()) {
      restore(state);
      static obs::Counter& resumes =
          obs::Registry::Global().GetCounter("train.checkpoint.resumes");
      resumes.Increment();
      TIMEDRL_LOG_INFO << "resumed pre-training from epoch " << epoch;
    } else if (status.code() == StatusCode::kNotFound) {
      TIMEDRL_LOG_INFO << "no checkpoint to resume from in "
                       << train.checkpoint.directory << "; starting fresh";
    } else {
      TIMEDRL_LOG_WARNING << "resume failed: " << status.ToString();
    }
  }
  // A baseline checkpoint gives the anomaly guard a rollback target even
  // when the first anomaly strikes before any epoch completes.
  if (checkpoints != nullptr && checkpoints->ListCheckpoints().empty()) {
    save_checkpoint();
  }

  model->Train();
  static obs::Counter& skipped_small = obs::Registry::Global().GetCounter(
      "train.batches_skipped_small");
  bool warned_small = false;
  data::Batch batch;
  while (epoch < train.epochs && !history.aborted) {
    TIMEDRL_TRACE_SCOPE_CAT("pretrain/epoch", "train");
    double total = 0.0;
    double predictive = 0.0;
    double contrastive = 0.0;
    double grad_norm_sum = 0.0;
    int64_t steps = 0;
    int64_t skipped = 0;
    bool rolled_back = false;
    loader.Reset();
    while (loader.Next(&batch)) {
      // BatchNorm in the contrastive head needs at least two samples. Such
      // batches are dropped, not trained on — surface that instead of
      // losing them silently.
      if (batch.size() < 2) {
        skipped_small.Increment();
        if (!warned_small) {
          TIMEDRL_LOG_WARNING
              << "dropping a batch of " << batch.size()
              << " sample(s): the contrastive head's BatchNorm needs >= 2 "
                 "(counted in train.batches_skipped_small; warning once per "
                 "run)";
          warned_small = true;
        }
        continue;
      }
      TIMEDRL_TRACE_SCOPE_CAT("pretrain/step", "train");
      TimeDrlModel::PretextOutput output;
      if (batch.has_views) {
        // Ablation path: the augmentation creates the two views (each draw
        // is independent), injecting its transformation-invariance into the
        // contrastive task — exactly the inductive bias TimeDRL avoids.
        output = model->PretextStepViews(batch.view1, batch.view2);
      } else {
        output = model->PretextStep(batch.x);
      }
      if (fault::Enabled() && fault::At("pretrain_nan_loss")) {
        // Poison the actual loss tensor so detection runs through the same
        // CountNonFinite path a real numerical blow-up would take.
        output.total.data()[0] = std::numeric_limits<float>::quiet_NaN();
      }
      optimizer.ZeroGrad();
      output.total.Backward();
      const float grad_norm =
          optim::ClipGradNorm(optimizer.parameters(), train.clip_norm);

      const AnomalyGuard::Action action = guard.Check(output.total, grad_norm);
      if (action == AnomalyGuard::Action::kSkip) {
        // Drop this step entirely: no optimizer update, no statistics.
        optimizer.ZeroGrad();
        ++skipped;
        continue;
      }
      if (action == AnomalyGuard::Action::kRollback) {
        optimizer.ZeroGrad();
        TrainingState state;
        Status status =
            checkpoints != nullptr
                ? checkpoints->LoadLatest(model, &state)
                : Status::Error(StatusCode::kNotFound,
                                "checkpointing disabled");
        if (!status.ok()) {
          history.aborted = true;
          history.abort_reason =
              "anomaly rollback requested but no checkpoint is available: " +
              status.ToString();
          break;
        }
        restore(state);
        learning_rate *= train.anomaly.lr_backoff;
        optimizer.set_learning_rate(learning_rate);
        guard.OnRollback();
        TIMEDRL_LOG_WARNING << "non-finite streak: rolled back to epoch "
                            << epoch << ", learning rate now "
                            << learning_rate;
        rolled_back = true;
        break;
      }
      if (action == AnomalyGuard::Action::kAbort) {
        optimizer.ZeroGrad();
        history.aborted = true;
        history.abort_reason = guard.abort_reason();
        break;
      }

      optimizer.Step();
      const double loss = output.total.item();
      total += loss;
      predictive += output.predictive.item();
      contrastive += output.contrastive.item();
      grad_norm_sum += grad_norm;
      if (train.observer != nullptr) {
        obs::StepStats step_stats;
        step_stats.epoch = epoch;
        step_stats.step = steps;
        step_stats.batch_size = batch.size();
        step_stats.loss = loss;
        step_stats.grad_norm = grad_norm;
        step_stats.learning_rate = learning_rate;
        train.observer->OnStep(step_stats);
      }
      ++steps;
      ++global_step;
    }
    if (rolled_back) continue;  // epoch cursor was restored; re-run it
    if (history.aborted) break;
    if (steps == 0 && skipped > 0) {
      // Every batch this epoch was anomalous but the guard never reached its
      // streak threshold (short epoch). Surface it as a structured abort
      // rather than dividing by zero or crashing.
      history.aborted = true;
      history.abort_reason = "epoch produced no finite steps (" +
                             std::to_string(skipped) + " skipped)";
      break;
    }
    TIMEDRL_CHECK_GT(steps, 0) << "no usable batches";
    history.total.push_back(total / steps);
    history.predictive.push_back(predictive / steps);
    history.contrastive.push_back(contrastive / steps);
    if (train.observer != nullptr) {
      obs::EpochStats epoch_stats;
      epoch_stats.phase = "pretrain";
      epoch_stats.loss_label = "L";
      epoch_stats.epoch = epoch;
      epoch_stats.num_epochs = train.epochs;
      epoch_stats.steps = steps;
      epoch_stats.loss = history.total.back();
      epoch_stats.grad_norm = grad_norm_sum / steps;
      epoch_stats.learning_rate = learning_rate;
      epoch_stats.extra = {{"L_P", history.predictive.back()},
                           {"L_C", history.contrastive.back()}};
      train.observer->OnEpochEnd(epoch_stats);
    }
    ++epoch;
    if (checkpoints != nullptr &&
        (epoch % train.checkpoint.every_epochs == 0 ||
         epoch == train.epochs)) {
      save_checkpoint();
    }
  }
  if (history.aborted) {
    TIMEDRL_LOG_ERROR << "pre-training aborted: " << history.abort_reason;
  }
  model->Eval();
  return history;
}

}  // namespace timedrl::core
