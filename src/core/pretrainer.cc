#include "core/pretrainer.h"

#include "data/loader.h"
#include "optim/optimizer.h"
#include "util/check.h"
#include "util/logging.h"

namespace timedrl::core {

PretrainHistory Pretrain(TimeDrlModel* model,
                         const UnlabeledWindowSource& source,
                         const PretrainConfig& config, Rng& rng) {
  TIMEDRL_CHECK(model != nullptr);
  TIMEDRL_CHECK_GT(source.size(), 0) << "empty pre-training source";

  optim::AdamW optimizer(model->Parameters(), config.learning_rate,
                         config.weight_decay);
  data::BatchIterator batches(source.size(), config.batch_size,
                              /*shuffle=*/true, rng, /*drop_last=*/false);
  Rng augment_rng = rng.Fork();

  PretrainHistory history;
  model->Train();
  std::vector<int64_t> indices;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double total = 0.0;
    double predictive = 0.0;
    double contrastive = 0.0;
    int64_t steps = 0;
    batches.Reset();
    while (batches.Next(&indices)) {
      // BatchNorm in the contrastive head needs at least two samples.
      if (static_cast<int64_t>(indices.size()) < 2) continue;
      Tensor x = source.GetWindows(indices);
      TimeDrlModel::PretextOutput output;
      if (config.augmentation != augment::Kind::kNone) {
        // Ablation path: the augmentation creates the two views (each draw
        // is independent), injecting its transformation-invariance into the
        // contrastive task — exactly the inductive bias TimeDRL avoids.
        Tensor view1 = augment::Apply(config.augmentation, x,
                                      config.augment_config, augment_rng);
        Tensor view2 = augment::Apply(config.augmentation, x,
                                      config.augment_config, augment_rng);
        output = model->PretextStepViews(view1, view2);
      } else {
        output = model->PretextStep(x);
      }
      optimizer.ZeroGrad();
      output.total.Backward();
      optim::ClipGradNorm(optimizer.parameters(), config.clip_norm);
      optimizer.Step();

      total += output.total.item();
      predictive += output.predictive.item();
      contrastive += output.contrastive.item();
      ++steps;
    }
    TIMEDRL_CHECK_GT(steps, 0) << "no usable batches";
    history.total.push_back(total / steps);
    history.predictive.push_back(predictive / steps);
    history.contrastive.push_back(contrastive / steps);
    if (config.verbose) {
      TIMEDRL_LOG_INFO << "pretrain epoch " << epoch + 1 << "/"
                       << config.epochs << " L=" << history.total.back()
                       << " L_P=" << history.predictive.back()
                       << " L_C=" << history.contrastive.back();
    }
  }
  model->Eval();
  return history;
}

}  // namespace timedrl::core
