#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "obs/logging.h"
#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/fault_inject.h"

namespace timedrl::core {
namespace {

namespace fs = std::filesystem;

using io::ReadScalar;
using io::ReadString;
using io::WriteScalar;
using io::WriteString;

constexpr char kFilePrefix[] = "checkpoint-";
constexpr char kFileSuffix[] = ".tdrl";
constexpr uint32_t kMaxRank = 16;

const std::string* FindStream(
    const std::vector<std::pair<std::string, std::string>>& streams,
    std::string_view name) {
  for (const auto& [key, value] : streams) {
    if (key == name) return &value;
  }
  return nullptr;
}

Status Corrupt(const std::string& message) {
  return Status::Error(StatusCode::kCorruptData, message);
}

Status IoError(const std::string& message) {
  return Status::Error(StatusCode::kIoError, message);
}

// ---- Section writers (payload assembled in memory, CRC'd, then written) ----

void WriteRngStreams(std::ostream& out, const TrainingState& state) {
  WriteScalar(out, static_cast<uint64_t>(state.rng_streams.size()));
  for (const auto& [name, stream] : state.rng_streams) {
    WriteString(out, name);
    WriteString(out, stream);
  }
}

void WriteOptimizer(std::ostream& out, const optim::OptimizerState& opt) {
  WriteString(out, opt.type);
  WriteScalar(out, opt.step_count);
  WriteScalar(out, static_cast<uint64_t>(opt.slots.size()));
  for (const auto& slot : opt.slots) {
    WriteScalar(out, static_cast<uint64_t>(slot.size()));
    out.write(reinterpret_cast<const char*>(slot.data()),
              static_cast<std::streamsize>(slot.size() * sizeof(float)));
  }
}

void WriteCursor(std::ostream& out, const TrainingState& state) {
  WriteScalar(out, state.epoch);
  WriteScalar(out, state.global_step);
  WriteScalar(out, state.learning_rate);
}

void WriteHistory(std::ostream& out, const TrainingState& state) {
  WriteScalar(out, static_cast<uint32_t>(state.history.size()));
  for (const auto& [name, series] : state.history) {
    WriteString(out, name);
    WriteScalar(out, static_cast<uint64_t>(series.size()));
    out.write(reinterpret_cast<const char*>(series.data()),
              static_cast<std::streamsize>(series.size() * sizeof(double)));
  }
}

// ---- Section readers -------------------------------------------------------------

Status ReadRngStreams(std::istream& in, TrainingState* state) {
  uint64_t count = 0;
  if (!ReadScalar(in, &count)) return Corrupt("truncated RNG stream count");
  if (count > 1024) return Corrupt("implausible RNG stream count");
  state->rng_streams.clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    std::string stream;
    if (!ReadString(in, &name) || !ReadString(in, &stream)) {
      return Corrupt("truncated RNG stream entry");
    }
    state->rng_streams.emplace_back(std::move(name), std::move(stream));
  }
  return Status::Ok();
}

Status ReadOptimizer(std::istream& in, optim::OptimizerState* opt,
                     std::vector<uint64_t>* slot_sizes_only = nullptr) {
  if (!ReadString(in, &opt->type)) return Corrupt("truncated optimizer type");
  if (!ReadScalar(in, &opt->step_count)) {
    return Corrupt("truncated optimizer step count");
  }
  uint64_t num_slots = 0;
  if (!ReadScalar(in, &num_slots)) return Corrupt("truncated slot count");
  if (num_slots > (1u << 20)) return Corrupt("implausible slot count");
  opt->slots.clear();
  for (uint64_t i = 0; i < num_slots; ++i) {
    uint64_t n = 0;
    if (!ReadScalar(in, &n)) return Corrupt("truncated slot size");
    if (slot_sizes_only != nullptr) {
      slot_sizes_only->push_back(n);
      in.seekg(static_cast<std::streamoff>(n * sizeof(float)), std::ios::cur);
      if (!in) return Corrupt("truncated optimizer slot data");
      continue;
    }
    std::vector<float> slot(n);
    in.read(reinterpret_cast<char*>(slot.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (in.gcount() != static_cast<std::streamsize>(n * sizeof(float))) {
      return Corrupt("truncated optimizer slot data");
    }
    opt->slots.push_back(std::move(slot));
  }
  return Status::Ok();
}

Status ReadCursor(std::istream& in, TrainingState* state) {
  if (!ReadScalar(in, &state->epoch) || !ReadScalar(in, &state->global_step) ||
      !ReadScalar(in, &state->learning_rate)) {
    return Corrupt("truncated training cursor");
  }
  return Status::Ok();
}

Status ReadHistory(std::istream& in, TrainingState* state) {
  uint32_t count = 0;
  if (!ReadScalar(in, &count)) return Corrupt("truncated history count");
  if (count > 1024) return Corrupt("implausible history count");
  state->history.clear();
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t n = 0;
    if (!ReadString(in, &name) || !ReadScalar(in, &n)) {
      return Corrupt("truncated history entry");
    }
    if (n > (1u << 26)) return Corrupt("implausible history length");
    std::vector<double> series(n);
    in.read(reinterpret_cast<char*>(series.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
    if (in.gcount() != static_cast<std::streamsize>(n * sizeof(double))) {
      return Corrupt("truncated history data");
    }
    state->history.emplace_back(std::move(name), std::move(series));
  }
  return Status::Ok();
}

// Reads names and shapes out of a parameters body, skipping the float data —
// lets Inspect summarize a checkpoint without instantiating the model.
Status SkimParametersBody(std::istream& in,
                          std::vector<std::pair<std::string, Shape>>* out) {
  uint64_t count = 0;
  if (!ReadScalar(in, &count)) return Corrupt("truncated parameter count");
  if (count > (1u << 20)) return Corrupt("implausible parameter count");
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    if (!ReadString(in, &name)) return Corrupt("truncated parameter name");
    uint32_t rank = 0;
    if (!ReadScalar(in, &rank) || rank > kMaxRank) {
      return Corrupt("bad rank for parameter '" + name + "'");
    }
    Shape shape(rank);
    int64_t numel = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadScalar(in, &shape[d]) || shape[d] < 0) {
        return Corrupt("truncated shape for parameter '" + name + "'");
      }
      numel *= shape[d];
    }
    in.seekg(static_cast<std::streamoff>(numel * sizeof(float)),
             std::ios::cur);
    if (!in) return Corrupt("truncated data for parameter '" + name + "'");
    out->emplace_back(std::move(name), std::move(shape));
  }
  return Status::Ok();
}

// Skips the mutable-state body during Inspect (module-free parsing).
Status SkimMutableStateBody(std::istream& in) {
  uint64_t num_rngs = 0;
  if (!ReadScalar(in, &num_rngs) || num_rngs > 4096) {
    return Corrupt("bad mutable-state RNG count");
  }
  for (uint64_t i = 0; i < num_rngs; ++i) {
    std::string skip;
    if (!ReadString(in, &skip) || !ReadString(in, &skip)) {
      return Corrupt("truncated mutable-state RNG entry");
    }
  }
  uint64_t num_buffers = 0;
  if (!ReadScalar(in, &num_buffers) || num_buffers > 4096) {
    return Corrupt("bad mutable-state buffer count");
  }
  for (uint64_t i = 0; i < num_buffers; ++i) {
    std::string skip;
    uint64_t n = 0;
    if (!ReadString(in, &skip) || !ReadScalar(in, &n)) {
      return Corrupt("truncated mutable-state buffer entry");
    }
    in.seekg(static_cast<std::streamoff>(n * sizeof(float)), std::ios::cur);
    if (!in) return Corrupt("truncated mutable-state buffer data");
  }
  uint64_t num_flags = 0;
  if (!ReadScalar(in, &num_flags) || num_flags > 4096) {
    return Corrupt("bad mutable-state flag count");
  }
  for (uint64_t i = 0; i < num_flags; ++i) {
    std::string skip;
    uint8_t value = 0;
    if (!ReadString(in, &skip) || !ReadScalar(in, &value)) {
      return Corrupt("truncated mutable-state flag entry");
    }
  }
  return Status::Ok();
}

// Slurps a file into memory. Whole-file reads let the CRC be validated
// before any byte is parsed, so a corrupt checkpoint never half-mutates the
// model it is being restored into.
Status ReadWholeFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return IoError("read failed for " + path);
  *contents = buffer.str();
  return Status::Ok();
}

// Validates magic + version and, for v2, the CRC-32 footer. On success
// `body` is set to the section bytes between the header and the footer.
Status CheckEnvelope(const std::string& path, const std::string& contents,
                     uint32_t* version, std::string_view* body,
                     bool* crc_valid) {
  constexpr size_t kHeaderBytes = sizeof(nn::kCheckpointMagic) + 4;
  if (contents.size() < kHeaderBytes ||
      std::memcmp(contents.data(), nn::kCheckpointMagic,
                  sizeof(nn::kCheckpointMagic)) != 0) {
    return Corrupt(path + " is not a TimeDRL checkpoint");
  }
  std::memcpy(version, contents.data() + sizeof(nn::kCheckpointMagic), 4);
  if (*version == nn::kVersionParamsOnly) {
    if (crc_valid != nullptr) *crc_valid = false;
    *body = std::string_view(contents).substr(kHeaderBytes);
    return Status::Ok();
  }
  if (*version != nn::kVersionTrainingState) {
    return Status::Error(
        StatusCode::kVersionMismatch,
        "unsupported checkpoint version " + std::to_string(*version));
  }
  if (contents.size() < kHeaderBytes + 4) {
    return Corrupt(path + ": file shorter than header + CRC footer");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, contents.data() + contents.size() - 4, 4);
  const uint32_t actual_crc = Crc32(contents.data(), contents.size() - 4);
  const bool valid = stored_crc == actual_crc;
  if (crc_valid != nullptr) *crc_valid = valid;
  if (!valid) {
    return Corrupt(path + ": CRC mismatch (truncated or corrupt tail)");
  }
  *body = std::string_view(contents)
              .substr(kHeaderBytes, contents.size() - kHeaderBytes - 4);
  return Status::Ok();
}

// Parses the epoch out of "checkpoint-<epoch>.tdrl"; -1 when the name does
// not match the scheme.
int64_t EpochFromFilename(const std::string& filename) {
  const size_t prefix_len = sizeof(kFilePrefix) - 1;
  const size_t suffix_len = sizeof(kFileSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len) return -1;
  if (filename.compare(0, prefix_len, kFilePrefix) != 0) return -1;
  if (filename.compare(filename.size() - suffix_len, suffix_len,
                       kFileSuffix) != 0) {
    return -1;
  }
  const std::string digits =
      filename.substr(prefix_len, filename.size() - prefix_len - suffix_len);
  if (digits.empty()) return -1;
  char* end = nullptr;
  const long long epoch = std::strtoll(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || epoch < 0) return -1;
  return static_cast<int64_t>(epoch);
}

// fsync a path (file or directory) by descriptor; best-effort — filesystems
// without directory fsync still get the temp-file + rename ordering.
void SyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void TrainingState::SetLoaderState(const data::DataLoader::State& loader) {
  rng_streams.erase(
      std::remove_if(rng_streams.begin(), rng_streams.end(),
                     [](const auto& entry) {
                       return entry.first == kLoaderShuffleRngName ||
                              entry.first == kLoaderAugmentRngName;
                     }),
      rng_streams.end());
  rng_streams.emplace_back(kLoaderShuffleRngName, loader.shuffle_rng);
  rng_streams.emplace_back(kLoaderAugmentRngName, loader.augment_rng);
}

bool TrainingState::GetLoaderState(data::DataLoader::State* loader) const {
  const std::string* shuffle =
      FindStream(rng_streams, kLoaderShuffleRngName);
  const std::string* augment =
      FindStream(rng_streams, kLoaderAugmentRngName);
  if (shuffle == nullptr || augment == nullptr) return false;
  loader->shuffle_rng = *shuffle;
  loader->augment_rng = *augment;
  return true;
}

CheckpointManager::CheckpointManager(std::string directory, int64_t keep_last)
    : directory_(std::move(directory)), keep_last_(keep_last) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  // Failure surfaces as kIoError from the first Save; nothing to do here.
}

std::vector<std::string> CheckpointManager::ListCheckpoints() const {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string filename = entry.path().filename().string();
    const int64_t epoch = EpochFromFilename(filename);
    if (epoch < 0) continue;
    found.emplace_back(epoch, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [epoch, path] : found) paths.push_back(std::move(path));
  return paths;
}

Status CheckpointManager::Save(const nn::Module& model,
                               const TrainingState& state) {
  std::ostringstream out;
  out.write(nn::kCheckpointMagic, sizeof(nn::kCheckpointMagic));
  WriteScalar(out, nn::kVersionTrainingState);
  nn::WriteParametersBody(out, model);
  // CollectMutableState is non-const (it hands out pointers for restore);
  // the write path only reads through them.
  nn::WriteMutableStateBody(out, const_cast<nn::Module&>(model));
  WriteRngStreams(out, state);
  WriteOptimizer(out, state.optimizer);
  WriteCursor(out, state);
  WriteHistory(out, state);

  std::string payload = out.str();
  const uint32_t crc = Crc32(payload.data(), payload.size());
  payload.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  if (fault::Enabled() && fault::At("truncate_checkpoint")) {
    // Simulate a torn write: drop the tail (including the CRC footer) so the
    // file that lands under the final name fails validation.
    payload.resize(payload.size() - payload.size() / 4 - sizeof(crc));
    TIMEDRL_LOG_WARNING << "fault injection: truncating checkpoint for epoch "
                        << state.epoch;
  }

  const std::string final_path =
      (fs::path(directory_) /
       (kFilePrefix + std::to_string(state.epoch) + kFileSuffix))
          .string();
  const std::string temp_path = final_path + ".tmp";

  {
    std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
    if (!file) return IoError("cannot open " + temp_path + " for writing");
    file.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!file) return IoError("write failed for " + temp_path);
  }
  SyncPath(temp_path);

  std::error_code ec;
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    return IoError("rename " + temp_path + " -> " + final_path + " failed: " +
                   ec.message());
  }
  SyncPath(directory_);

  if (keep_last_ > 0) {
    std::vector<std::string> existing = ListCheckpoints();
    const int64_t excess =
        static_cast<int64_t>(existing.size()) - keep_last_;
    for (int64_t i = 0; i < excess; ++i) {
      fs::remove(existing[static_cast<size_t>(i)], ec);  // best-effort prune
    }
  }
  return Status::Ok();
}

Status CheckpointManager::LoadFile(const std::string& path, nn::Module* model,
                                   TrainingState* state) {
  std::string contents;
  Status status = ReadWholeFile(path, &contents);
  if (!status.ok()) return status;

  uint32_t version = 0;
  std::string_view body;
  status = CheckEnvelope(path, contents, &version, &body, nullptr);
  if (!status.ok()) return status;

  std::istringstream in{std::string(body)};
  status = nn::ReadParametersBody(in, model);
  if (!status.ok()) return status;

  if (version == nn::kVersionParamsOnly) {
    in.peek();
    if (!in.eof()) {
      return Corrupt("trailing bytes after the last parameter in " + path);
    }
    return Status::Ok();
  }

  status = nn::ReadMutableStateBody(in, model);
  if (!status.ok()) return status;
  status = ReadRngStreams(in, state);
  if (!status.ok()) return status;
  status = ReadOptimizer(in, &state->optimizer);
  if (!status.ok()) return status;
  status = ReadCursor(in, state);
  if (!status.ok()) return status;
  status = ReadHistory(in, state);
  if (!status.ok()) return status;
  in.peek();
  if (!in.eof()) {
    return Corrupt("trailing bytes after the history section in " + path);
  }
  return Status::Ok();
}

Status CheckpointManager::LoadLatest(nn::Module* model,
                                     TrainingState* state) const {
  const std::vector<std::string> checkpoints = ListCheckpoints();
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    Status status = LoadFile(*it, model, state);
    if (status.ok()) return Status::Ok();
    TIMEDRL_LOG_WARNING << "skipping checkpoint " << *it << ": "
                        << status.ToString();
  }
  return Status::Error(StatusCode::kNotFound,
                       "no valid checkpoint in " + directory_);
}

Status CheckpointManager::Inspect(const std::string& path,
                                  CheckpointInfo* info) {
  std::string contents;
  Status status = ReadWholeFile(path, &contents);
  if (!status.ok()) return status;
  info->file_bytes = contents.size();

  uint32_t version = 0;
  std::string_view body;
  bool crc_valid = false;
  status = CheckEnvelope(path, contents, &version, &body, &crc_valid);
  info->version = version;
  info->has_crc = version == nn::kVersionTrainingState;
  info->crc_valid = crc_valid;
  if (!status.ok()) {
    // A failed CRC is still a successful *inspection* — report validity
    // rather than refusing; other envelope problems are real errors.
    if (info->has_crc && !crc_valid &&
        status.code() == StatusCode::kCorruptData) {
      return Status::Ok();
    }
    return status;
  }

  std::istringstream in{std::string(body)};
  status = SkimParametersBody(in, &info->parameters);
  if (!status.ok()) return status;

  if (version == nn::kVersionParamsOnly) return Status::Ok();

  status = SkimMutableStateBody(in);
  if (!status.ok()) return status;
  TrainingState state;
  status = ReadRngStreams(in, &state);
  if (!status.ok()) return status;
  optim::OptimizerState opt;
  status = ReadOptimizer(in, &opt, &info->optimizer_slot_sizes);
  if (!status.ok()) return status;
  info->optimizer_type = opt.type;
  info->optimizer_step_count = opt.step_count;
  status = ReadCursor(in, &state);
  if (!status.ok()) return status;
  info->epoch = state.epoch;
  info->global_step = state.global_step;
  info->learning_rate = state.learning_rate;
  status = ReadHistory(in, &state);
  if (!status.ok()) return status;
  for (const auto& [name, series] : state.history) {
    info->history_sizes.emplace_back(name,
                                     static_cast<uint64_t>(series.size()));
  }
  return Status::Ok();
}

}  // namespace timedrl::core
