#include "core/model.h"

#include "data/patching.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl::core {

Tensor NegativeCosineSimilarity(const Tensor& a, const Tensor& b) {
  TIMEDRL_CHECK_EQ(a.dim(), 2);
  TIMEDRL_CHECK(a.shape() == b.shape());
  Tensor dot = Sum(a * b, {1});
  Tensor norm_a = Sqrt(Sum(a * a, {1}) + 1e-8f);
  Tensor norm_b = Sqrt(Sum(b * b, {1}) + 1e-8f);
  return Neg(Mean(dot / (norm_a * norm_b)));
}

TimeDrlModel::TimeDrlModel(const TimeDrlConfig& config, Rng& rng)
    : config_(config),
      token_embedding_(config.token_dim(), config.d_model, rng),
      positional_(1 + config.num_patches(), config.d_model, rng),
      embedding_dropout_(config.dropout, rng),
      predictive_head_(config.d_model, config.token_dim(), rng),
      contrastive_fc1_(config.d_model, config.d_model / 2, rng),
      contrastive_bn_(config.d_model / 2),
      contrastive_fc2_(config.d_model / 2, config.d_model, rng) {
  TIMEDRL_CHECK_GE(config.input_length, config.patch_length);
  TIMEDRL_CHECK_GE(config.d_model, 2);
  cls_token_ = RegisterParameter(
      "cls_token", Tensor::Randn({config.token_dim()}, rng, 0.0f, 0.02f,
                                 /*requires_grad=*/true));

  nn::BackboneConfig backbone_config;
  backbone_config.kind = config.backbone;
  backbone_config.d_model = config.d_model;
  backbone_config.num_layers = config.num_layers;
  backbone_config.num_heads = config.num_heads;
  backbone_config.ff_dim = config.ff_dim;
  backbone_config.dropout = config.dropout;
  backbone_ = nn::MakeBackbone(backbone_config, rng);

  RegisterModule("token_embedding", &token_embedding_);
  RegisterModule("positional", &positional_);
  RegisterModule("embedding_dropout", &embedding_dropout_);
  RegisterModule("backbone", backbone_.get());
  RegisterModule("predictive_head", &predictive_head_);
  RegisterModule("contrastive_fc1", &contrastive_fc1_);
  RegisterModule("contrastive_bn", &contrastive_bn_);
  RegisterModule("contrastive_fc2", &contrastive_fc2_);
}

TimeDrlModel::Patched TimeDrlModel::Prepare(const Tensor& x) {
  TIMEDRL_CHECK_EQ(x.dim(), 3) << "expects [B, T, C]";
  TIMEDRL_CHECK_EQ(x.size(1), config_.input_length);
  TIMEDRL_CHECK_EQ(x.size(2), config_.input_channels);
  data::InstanceNormResult in = data::InstanceNormalize(x);
  Patched patched;
  patched.tokens = data::Patchify(in.normalized, config_.patch_length,
                                  config_.patch_stride);
  patched.mean = in.mean;
  patched.std_dev = in.std_dev;
  return patched;
}

Tensor TimeDrlModel::EncodeTokens(const Tensor& x_patched) {
  const int64_t batch = x_patched.size(0);
  // Broadcast the learnable [CLS] token to [B, 1, C*P] and prepend (Eq. 2).
  Tensor cls = BroadcastTo(Reshape(cls_token_, {1, 1, config_.token_dim()}),
                           {batch, 1, config_.token_dim()});
  Tensor enc_in = Concat({cls, x_patched}, /*dim=*/1);
  Tensor tokens = token_embedding_.Forward(enc_in);   // x W_token^T
  tokens = positional_.Forward(tokens);               // + PE
  tokens = embedding_dropout_.Forward(tokens);
  return backbone_->Encode(tokens);                   // TBs(...)
}

TimeDrlModel::PretextOutput TimeDrlModel::PretextStep(const Tensor& x) {
  return PretextStepViews(x, x);
}

TimeDrlModel::PretextOutput TimeDrlModel::PretextStepViews(const Tensor& x1,
                                                           const Tensor& x2) {
  TIMEDRL_CHECK(training())
      << "PretextStep requires training mode: the contrastive views come "
         "from dropout randomness";
  Patched patched1 = Prepare(x1);
  Patched patched2 = Prepare(x2);

  // Two views: identical inputs differ only through dropout randomness
  // (TimeDRL proper, Eq. 10-11); augmented inputs add view-level variation
  // (Table VI ablation).
  Tensor z1 = EncodeTokens(patched1.tokens);
  Tensor z2 = EncodeTokens(patched2.tokens);

  const int64_t num_patches = config_.num_patches();
  Tensor z1_t = Slice(z1, 1, 1, num_patches);
  Tensor z2_t = Slice(z2, 1, 1, num_patches);
  Tensor z1_i = Reshape(Slice(z1, 1, 0, 1), {z1.size(0), config_.d_model});
  Tensor z2_i = Reshape(Slice(z2, 1, 0, 1), {z2.size(0), config_.d_model});

  // Timestamp-predictive task (Eq. 7-9): each view reconstructs its own
  // patched input, without any masking. The instance embedding is excluded
  // by construction.
  Tensor loss_p1 =
      MseLoss(predictive_head_.Forward(z1_t), patched1.tokens.Detach());
  Tensor loss_p2 =
      MseLoss(predictive_head_.Forward(z2_t), patched2.tokens.Detach());
  Tensor loss_p = 0.5f * loss_p1 + 0.5f * loss_p2;

  // Instance-contrastive task (Eq. 14-18): SimSiam-style asymmetric heads
  // with stop-gradient; no negatives, no augmentations.
  auto contrastive_head = [this](const Tensor& z) {
    Tensor h = contrastive_fc1_.Forward(z);
    h = Relu(contrastive_bn_.Forward(h));
    return contrastive_fc2_.Forward(h);
  };
  Tensor p1 = contrastive_head(z1_i);
  Tensor p2 = contrastive_head(z2_i);
  Tensor target1 = config_.stop_gradient ? z2_i.Detach() : z2_i;
  Tensor target2 = config_.stop_gradient ? z1_i.Detach() : z1_i;
  Tensor loss_c = 0.5f * NegativeCosineSimilarity(p1, target1) +
                  0.5f * NegativeCosineSimilarity(p2, target2);

  PretextOutput output;
  output.predictive = loss_p;
  output.contrastive = loss_c;
  output.total = loss_p + config_.lambda_weight * loss_c;
  return output;
}

TimeDrlModel::Encoded TimeDrlModel::Encode(const Tensor& x) {
  // In eval mode the whole encode is graph-free by construction: ops return
  // plain leaves, no backward closures or grad buffers are built. Training
  // mode (fine-tuning through the encoder) is unaffected.
  InferenceModeGuard inference_guard(/*enable=*/!training());
  Patched patched = Prepare(x);
  Tensor z = EncodeTokens(patched.tokens);
  Encoded encoded;
  const int64_t num_patches = config_.num_patches();
  encoded.instance =
      Reshape(Slice(z, 1, 0, 1), {z.size(0), config_.d_model});
  encoded.timestamp = Slice(z, 1, 1, num_patches);
  encoded.mean = patched.mean;
  encoded.std_dev = patched.std_dev;
  return encoded;
}

Tensor TimeDrlModel::PooledInstance(const Encoded& encoded,
                                    Pooling pooling) const {
  const int64_t batch = encoded.timestamp.size(0);
  const int64_t num_patches = encoded.timestamp.size(1);
  switch (pooling) {
    case Pooling::kCls:
      return encoded.instance;
    case Pooling::kLast:
      return Reshape(Slice(encoded.timestamp, 1, num_patches - 1, 1),
                     {batch, config_.d_model});
    case Pooling::kGap:
      return Mean(encoded.timestamp, {1});
    case Pooling::kAll:
      return Reshape(encoded.timestamp,
                     {batch, num_patches * config_.d_model});
  }
  TIMEDRL_CHECK(false) << "unknown pooling";
  return Tensor();
}

Tensor TimeDrlModel::ReconstructionError(const Tensor& x) {
  // Anomaly scoring is inference-only in eval mode; see Encode().
  InferenceModeGuard inference_guard(/*enable=*/!training());
  Patched patched = Prepare(x);
  Tensor z = EncodeTokens(patched.tokens);
  Tensor z_t = Slice(z, 1, 1, config_.num_patches());
  Tensor reconstruction = predictive_head_.Forward(z_t);
  Tensor diff = reconstruction - patched.tokens;
  return Mean(diff * diff, {2});  // [B, T_p]
}

int64_t TimeDrlModel::PooledDim(Pooling pooling) const {
  return pooling == Pooling::kAll ? config_.num_patches() * config_.d_model
                                  : config_.d_model;
}

}  // namespace timedrl::core
