// The TimeDRL model: disentangled dual-level representation learning for
// multivariate time-series (paper Section IV).
//
// Pipeline (Eq. 1-5):
//   x [B, T, C] --IN--> --patching--> x_patched [B, T_p, C*P]
//   x_enc_in = concat([CLS], x_patched)            (CLS is learnable)
//   z = Backbone(x_enc_in W_token^T + PE)          [B, 1+T_p, D]
//   z_i = z[:, 0, :]   (instance-level)            [B, D]
//   z_t = z[:, 1:, :]  (timestamp-level)           [B, T_p, D]
//
// Pretext tasks:
//   timestamp-predictive (Eq. 6-9): linear head p reconstructs x_patched
//   from z_t, with NO masking of the input;
//   instance-contrastive (Eq. 10-18): two dropout-induced views, SimSiam-
//   style bottleneck head c, negative cosine similarity with stop-gradient,
//   NO augmentations and NO negative pairs.

#ifndef TIMEDRL_CORE_MODEL_H_
#define TIMEDRL_CORE_MODEL_H_

#include <memory>

#include "core/config.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/sequence_encoder.h"
#include "util/rng.h"

namespace timedrl::core {

/// Full TimeDRL model: encoder f, predictive head p, contrastive head c.
class TimeDrlModel : public nn::Module {
 public:
  TimeDrlModel(const TimeDrlConfig& config, Rng& rng);

  /// Instance + timestamp embeddings of a raw window batch, together with
  /// the instance-normalization statistics needed to de-normalize
  /// predictions (RevIN-style).
  struct Encoded {
    Tensor instance;   // [B, D]
    Tensor timestamp;  // [B, T_p, D]
    Tensor mean;       // [B, 1, C]
    Tensor std_dev;    // [B, 1, C]
  };

  /// Losses of one pretext step (paper Eq. 9, 18, 19).
  struct PretextOutput {
    Tensor total;        // L = L_P + λ·L_C
    Tensor predictive;   // L_P
    Tensor contrastive;  // L_C
  };

  /// Runs both pretext tasks on a raw batch x [B, T, C]. Requires training
  /// mode (the two views come from dropout randomness).
  PretextOutput PretextStep(const Tensor& x);

  /// Pretext step over two externally-created views of the same batch (the
  /// Table VI ablation: views produced by a data augmentation instead of by
  /// dropout alone). Each view reconstructs its own patched input; the
  /// contrastive task aligns the two views, injecting the augmentation's
  /// transformation-invariance — the inductive bias TimeDRL avoids.
  PretextOutput PretextStepViews(const Tensor& x1, const Tensor& x2);

  /// Encodes a raw batch for downstream use. Deterministic in eval mode.
  Encoded Encode(const Tensor& x);

  /// Instance-level representation under a pooling strategy (Table VII).
  /// kAll returns [B, T_p*D]; the others return [B, D].
  Tensor PooledInstance(const Encoded& encoded, Pooling pooling) const;

  /// Per-patch reconstruction error of the timestamp-predictive head:
  /// [B, T_p]. After pre-training, large values flag windows whose local
  /// dynamics the model cannot explain — the anomaly-detection use of
  /// timestamp-level embeddings the paper's introduction motivates.
  Tensor ReconstructionError(const Tensor& x);

  /// Width of PooledInstance's output for `pooling`.
  int64_t PooledDim(Pooling pooling) const;

  const TimeDrlConfig& config() const { return config_; }

 private:
  /// IN + patching (Eq. 1). Returns x_patched plus the IN statistics.
  struct Patched {
    Tensor tokens;  // [B, T_p, C*P]
    Tensor mean;
    Tensor std_dev;
  };
  Patched Prepare(const Tensor& x);

  /// CLS concat, token embedding, positional encoding, backbone (Eq. 2-3).
  Tensor EncodeTokens(const Tensor& x_patched);

  TimeDrlConfig config_;
  Tensor cls_token_;  // [C*P], learnable
  nn::Linear token_embedding_;
  nn::LearnablePositionalEncoding positional_;
  nn::Dropout embedding_dropout_;
  std::unique_ptr<nn::SequenceEncoder> backbone_;
  nn::Linear predictive_head_;  // p: D -> C*P, no activation (Eq. 6)
  // c: two-layer bottleneck MLP with BatchNorm + ReLU in the middle.
  nn::Linear contrastive_fc1_;
  nn::BatchNorm1d contrastive_bn_;
  nn::Linear contrastive_fc2_;
};

/// Negative mean cosine similarity between row vectors (Eq. 16-17 building
/// block). a, b: [B, D]; returns a scalar tensor.
Tensor NegativeCosineSimilarity(const Tensor& a, const Tensor& b);

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_MODEL_H_
