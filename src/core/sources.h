// Adapters exposing datasets as unlabeled window sources for pre-training.

#ifndef TIMEDRL_CORE_SOURCES_H_
#define TIMEDRL_CORE_SOURCES_H_

#include <vector>

#include "data/loader.h"
#include "data/patching.h"
#include "data/time_series.h"
#include "data/windows.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace timedrl::core {

/// Uniform view over any dataset that can hand out raw [B, T, C] windows.
/// Doubles as a data::BatchSource so pre-training loops feed it straight
/// into a data::DataLoader: Fill() materializes the windows as `batch->x`.
class UnlabeledWindowSource : public data::BatchSource {
 public:
  virtual Tensor GetWindows(const std::vector<int64_t>& indices) const = 0;

  void Fill(const std::vector<int64_t>& indices,
            data::Batch* batch) const override {
    batch->x = GetWindows(indices);
  }
};

/// Forecasting windows; optionally applies the channel-independence
/// transform ([B, T, C] -> [B*C, T, 1]) used for forecasting experiments.
class ForecastingSource : public UnlabeledWindowSource {
 public:
  ForecastingSource(const data::ForecastingWindows* windows,
                    bool channel_independent)
      : windows_(windows), channel_independent_(channel_independent) {}

  int64_t size() const override { return windows_->size(); }

  Tensor GetWindows(const std::vector<int64_t>& indices) const override {
    Tensor x = windows_->GetInputs(indices);
    return channel_independent_ ? data::ToChannelIndependent(x) : x;
  }

 private:
  const data::ForecastingWindows* windows_;
  bool channel_independent_;
};

/// Classification windows (labels ignored during pre-training).
class ClassificationSource : public UnlabeledWindowSource {
 public:
  explicit ClassificationSource(const data::ClassificationDataset* dataset)
      : dataset_(dataset) {}

  int64_t size() const override { return dataset_->size(); }

  Tensor GetWindows(const std::vector<int64_t>& indices) const override {
    return dataset_->GetBatch(indices).first;
  }

 private:
  const data::ClassificationDataset* dataset_;
};

/// Union of several sources (multi-dataset pre-training — the direction the
/// paper's future work sketches for a "more comprehensive foundation
/// model"). All sources must produce windows of identical [T, C] geometry.
class ConcatSource : public UnlabeledWindowSource {
 public:
  explicit ConcatSource(std::vector<const UnlabeledWindowSource*> sources)
      : sources_(std::move(sources)) {
    int64_t offset = 0;
    for (const UnlabeledWindowSource* source : sources_) {
      offset += source->size();
      offsets_.push_back(offset);
    }
  }

  int64_t size() const override {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  Tensor GetWindows(const std::vector<int64_t>& indices) const override {
    // Dispatch each index to its source, then reassemble in order.
    std::vector<Tensor> rows;
    rows.reserve(indices.size());
    for (int64_t index : indices) {
      size_t which = 0;
      int64_t base = 0;
      while (index >= offsets_[which]) {
        base = offsets_[which];
        ++which;
      }
      rows.push_back(sources_[which]->GetWindows({index - base}));
    }
    return Concat(rows, 0);
  }

 private:
  std::vector<const UnlabeledWindowSource*> sources_;
  std::vector<int64_t> offsets_;  // cumulative sizes
};

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_SOURCES_H_
