#include "core/anomaly_guard.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/metrics.h"
#include "tensor/ops.h"

namespace timedrl::core {

AnomalyGuard::AnomalyGuard(const AnomalyGuardConfig& config)
    : config_(config) {}

AnomalyGuard::Action AnomalyGuard::Check(const Tensor& loss, float grad_norm) {
  // Only finiteness matters to the state machine, so any finite stand-in
  // works for the clean case; item() would reject non-scalar tensors.
  const bool loss_bad = CountNonFinite(loss) > 0;
  return CheckValues(loss_bad ? std::numeric_limits<double>::quiet_NaN() : 0.0,
                     grad_norm);
}

AnomalyGuard::Action AnomalyGuard::CheckValues(double loss, float grad_norm) {
  if (!config_.enabled) return Action::kProceed;
  if (std::isfinite(loss) && std::isfinite(grad_norm)) {
    consecutive_skips_ = 0;
    return Action::kProceed;
  }

  static obs::Counter& nonfinite =
      obs::Registry::Global().GetCounter("train.anomaly.nonfinite");
  nonfinite.Increment();
  ++consecutive_skips_;

  if (consecutive_skips_ < config_.max_consecutive_skips) {
    static obs::Counter& skips =
        obs::Registry::Global().GetCounter("train.anomaly.skipped_steps");
    skips.Increment();
    return Action::kSkip;
  }

  if (rollbacks_ < config_.max_rollbacks) {
    return Action::kRollback;
  }

  static obs::Counter& aborts =
      obs::Registry::Global().GetCounter("train.anomaly.aborts");
  aborts.Increment();
  std::ostringstream reason;
  reason << "aborting: " << consecutive_skips_
         << " consecutive non-finite steps with all " << config_.max_rollbacks
         << " rollbacks exhausted";
  abort_reason_ = reason.str();
  return Action::kAbort;
}

void AnomalyGuard::OnRollback() {
  static obs::Counter& rollbacks =
      obs::Registry::Global().GetCounter("train.anomaly.rollbacks");
  rollbacks.Increment();
  ++rollbacks_;
  consecutive_skips_ = 0;
}

}  // namespace timedrl::core
