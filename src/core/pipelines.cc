#include "core/pipelines.h"

#include "data/loader.h"
#include "data/patching.h"
#include "metrics/metrics.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/logging.h"

namespace timedrl::core {
namespace {

/// Parameters to optimize for a downstream run: the head, plus the encoder
/// when fine-tuning.
std::vector<Tensor> CollectParameters(nn::Module* head, TimeDrlModel* model,
                                      bool fine_tune_encoder) {
  std::vector<Tensor> parameters = head->Parameters();
  if (fine_tune_encoder) {
    std::vector<Tensor> encoder_parameters = model->Parameters();
    parameters.insert(parameters.end(), encoder_parameters.begin(),
                      encoder_parameters.end());
  }
  return parameters;
}

}  // namespace

// ---- ForecastingPipeline ---------------------------------------------------------

ForecastingPipeline::ForecastingPipeline(TimeDrlModel* model, int64_t horizon,
                                         int64_t channels,
                                         bool channel_independent, Rng& rng)
    : model_(model),
      horizon_(horizon),
      channels_(channels),
      channel_independent_(channel_independent) {
  TIMEDRL_CHECK(model != nullptr);
  TIMEDRL_CHECK_EQ(model->config().input_channels,
                   channel_independent ? 1 : channels)
      << "model channel setup does not match the pipeline";
  const int64_t feature_dim =
      model->config().num_patches() * model->config().d_model;
  const int64_t out_dim = horizon * (channel_independent ? 1 : channels);
  head_ = std::make_unique<nn::Linear>(feature_dim, out_dim, rng);
}

Tensor ForecastingPipeline::Predict(const Tensor& x, bool with_grad) {
  TIMEDRL_CHECK_EQ(x.dim(), 3);
  const int64_t batch = x.size(0);
  Tensor model_in =
      channel_independent_ ? data::ToChannelIndependent(x) : x;

  TimeDrlModel::Encoded encoded;
  if (with_grad) {
    encoded = model_->Encode(model_in);
  } else {
    NoGradGuard guard;
    encoded = model_->Encode(model_in);
  }

  const int64_t rows = encoded.timestamp.size(0);
  Tensor features = Reshape(
      encoded.timestamp,
      {rows, model_->config().num_patches() * model_->config().d_model});
  const int64_t out_channels = channel_independent_ ? 1 : channels_;
  Tensor prediction =
      Reshape(head_->Forward(features), {rows, horizon_, out_channels});
  // De-normalize with the input window's RevIN statistics so predictions
  // live on the data scale.
  prediction = prediction * encoded.std_dev + encoded.mean;
  if (channel_independent_) {
    prediction = data::FromChannelIndependent(prediction, batch, channels_);
  }
  return prediction;
}

void ForecastingPipeline::Train(const data::ForecastingWindows& train,
                                const DownstreamConfig& config, Rng& rng) {
  TIMEDRL_CHECK_EQ(train.horizon(), horizon_);
  TIMEDRL_CHECK_EQ(train.channels(), channels_);
  optim::AdamW optimizer(
      CollectParameters(head_.get(), model_, config.fine_tune_encoder),
      config.learning_rate, config.weight_decay);
  data::BatchIterator batches(train.size(), config.batch_size,
                              /*shuffle=*/true, rng);

  if (config.fine_tune_encoder) {
    model_->Train();
  } else {
    model_->Eval();
  }
  head_->Train();

  std::vector<int64_t> indices;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double total = 0.0;
    int64_t steps = 0;
    batches.Reset();
    while (batches.Next(&indices)) {
      auto [x, y] = train.GetBatch(indices);
      Tensor prediction = Predict(x, config.fine_tune_encoder);
      Tensor loss = MseLoss(prediction, y);
      optimizer.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(optimizer.parameters(), config.clip_norm);
      optimizer.Step();
      total += loss.item();
      ++steps;
    }
    if (config.verbose) {
      TIMEDRL_LOG_INFO << "forecast head epoch " << epoch + 1 << "/"
                       << config.epochs << " mse=" << total / steps;
    }
  }
  model_->Eval();
  head_->Eval();
}

ForecastMetrics ForecastingPipeline::Evaluate(
    const data::ForecastingWindows& test) {
  model_->Eval();
  head_->Eval();
  NoGradGuard guard;

  double squared = 0.0;
  double absolute = 0.0;
  int64_t count = 0;
  Rng throwaway(0);
  data::BatchIterator batches(test.size(), /*batch_size=*/64,
                              /*shuffle=*/false, throwaway);
  std::vector<int64_t> indices;
  while (batches.Next(&indices)) {
    auto [x, y] = test.GetBatch(indices);
    Tensor prediction = Predict(x, /*with_grad=*/false);
    const std::vector<float>& p = prediction.data();
    const std::vector<float>& t = y.data();
    for (size_t i = 0; i < p.size(); ++i) {
      const double d = double{p[i]} - double{t[i]};
      squared += d * d;
      absolute += std::abs(d);
    }
    count += static_cast<int64_t>(p.size());
  }
  TIMEDRL_CHECK_GT(count, 0) << "empty test set";
  return {squared / count, absolute / count};
}

// ---- ClassificationPipeline --------------------------------------------------------

ClassificationPipeline::ClassificationPipeline(TimeDrlModel* model,
                                               int64_t num_classes,
                                               Pooling pooling, Rng& rng)
    : model_(model), num_classes_(num_classes), pooling_(pooling) {
  TIMEDRL_CHECK(model != nullptr);
  head_ = std::make_unique<nn::Linear>(model->PooledDim(pooling), num_classes,
                                       rng);
}

Tensor ClassificationPipeline::Logits(const Tensor& x, bool with_grad) {
  TimeDrlModel::Encoded encoded;
  Tensor pooled;
  if (with_grad) {
    encoded = model_->Encode(x);
    pooled = model_->PooledInstance(encoded, pooling_);
  } else {
    NoGradGuard guard;
    encoded = model_->Encode(x);
    pooled = model_->PooledInstance(encoded, pooling_);
  }
  return head_->Forward(pooled);
}

void ClassificationPipeline::Train(const data::ClassificationDataset& train,
                                   const DownstreamConfig& config, Rng& rng) {
  TIMEDRL_CHECK_EQ(train.num_classes, num_classes_);
  optim::AdamW optimizer(
      CollectParameters(head_.get(), model_, config.fine_tune_encoder),
      config.learning_rate, config.weight_decay);
  data::BatchIterator batches(train.size(), config.batch_size,
                              /*shuffle=*/true, rng);

  if (config.fine_tune_encoder) {
    model_->Train();
  } else {
    model_->Eval();
  }
  head_->Train();

  std::vector<int64_t> indices;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double total = 0.0;
    int64_t steps = 0;
    batches.Reset();
    while (batches.Next(&indices)) {
      auto [x, labels] = train.GetBatch(indices);
      Tensor loss =
          CrossEntropy(Logits(x, config.fine_tune_encoder), labels);
      optimizer.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(optimizer.parameters(), config.clip_norm);
      optimizer.Step();
      total += loss.item();
      ++steps;
    }
    if (config.verbose) {
      TIMEDRL_LOG_INFO << "classify head epoch " << epoch + 1 << "/"
                       << config.epochs << " ce=" << total / steps;
    }
  }
  model_->Eval();
  head_->Eval();
}

std::vector<int64_t> ClassificationPipeline::Predict(
    const data::ClassificationDataset& dataset) {
  model_->Eval();
  head_->Eval();
  NoGradGuard guard;
  std::vector<int64_t> predictions;
  predictions.reserve(dataset.size());
  Rng throwaway(0);
  data::BatchIterator batches(dataset.size(), /*batch_size=*/64,
                              /*shuffle=*/false, throwaway);
  std::vector<int64_t> indices;
  while (batches.Next(&indices)) {
    auto [x, labels] = dataset.GetBatch(indices);
    (void)labels;
    Tensor logits = Logits(x, /*with_grad=*/false);
    std::vector<int64_t> batch_predictions = ArgMax(logits, 1);
    predictions.insert(predictions.end(), batch_predictions.begin(),
                       batch_predictions.end());
  }
  return predictions;
}

ClassificationMetrics ClassificationPipeline::Evaluate(
    const data::ClassificationDataset& test) {
  const std::vector<int64_t> predictions = Predict(test);
  ClassificationMetrics result;
  result.accuracy = metrics::Accuracy(predictions, test.labels);
  result.macro_f1 = metrics::MacroF1(predictions, test.labels, num_classes_);
  result.kappa = metrics::CohenKappa(predictions, test.labels, num_classes_);
  return result;
}

}  // namespace timedrl::core
