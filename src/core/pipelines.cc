#include "core/pipelines.h"

#include "data/loader.h"
#include "data/patching.h"
#include "metrics/metrics.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace timedrl::core {
namespace {

/// Reports one downstream-head epoch to the configured observer (if any).
void ReportEpoch(const TrainConfig& train, const char* phase,
                 const char* loss_label, int64_t epoch, int64_t steps,
                 double mean_loss, double mean_grad_norm) {
  if (train.observer == nullptr) return;
  obs::EpochStats epoch_stats;
  epoch_stats.phase = phase;
  epoch_stats.loss_label = loss_label;
  epoch_stats.epoch = epoch;
  epoch_stats.num_epochs = train.epochs;
  epoch_stats.steps = steps;
  epoch_stats.loss = mean_loss;
  epoch_stats.grad_norm = mean_grad_norm;
  epoch_stats.learning_rate = train.learning_rate;
  train.observer->OnEpochEnd(epoch_stats);
}

/// Reports one optimizer step to the configured observer (if any).
void ReportStep(const TrainConfig& train, int64_t epoch, int64_t step,
                int64_t batch_size, double loss, double grad_norm) {
  if (train.observer == nullptr) return;
  obs::StepStats step_stats;
  step_stats.epoch = epoch;
  step_stats.step = step;
  step_stats.batch_size = batch_size;
  step_stats.loss = loss;
  step_stats.grad_norm = grad_norm;
  step_stats.learning_rate = train.learning_rate;
  train.observer->OnStep(step_stats);
}

/// Parameters to optimize for a downstream run: the head, plus the encoder
/// when fine-tuning.
std::vector<Tensor> CollectParameters(nn::Module* head, TimeDrlModel* model,
                                      bool fine_tune_encoder) {
  std::vector<Tensor> parameters = head->Parameters();
  if (fine_tune_encoder) {
    std::vector<Tensor> encoder_parameters = model->Parameters();
    parameters.insert(parameters.end(), encoder_parameters.begin(),
                      encoder_parameters.end());
  }
  return parameters;
}

}  // namespace

// ---- ForecastingPipeline ---------------------------------------------------------

ForecastingPipeline::ForecastingPipeline(TimeDrlModel* model, int64_t horizon,
                                         int64_t channels,
                                         bool channel_independent, Rng& rng)
    : model_(model),
      horizon_(horizon),
      channels_(channels),
      channel_independent_(channel_independent) {
  TIMEDRL_CHECK(model != nullptr);
  TIMEDRL_CHECK_EQ(model->config().input_channels,
                   channel_independent ? 1 : channels)
      << "model channel setup does not match the pipeline";
  const int64_t feature_dim =
      model->config().num_patches() * model->config().d_model;
  const int64_t out_dim = horizon * (channel_independent ? 1 : channels);
  head_ = std::make_unique<nn::Linear>(feature_dim, out_dim, rng);
}

Tensor ForecastingPipeline::Predict(const Tensor& x, bool with_grad) {
  TIMEDRL_CHECK_EQ(x.dim(), 3);
  const int64_t batch = x.size(0);
  Tensor model_in =
      channel_independent_ ? data::ToChannelIndependent(x) : x;

  TimeDrlModel::Encoded encoded;
  if (with_grad) {
    encoded = model_->Encode(model_in);
  } else {
    NoGradGuard guard;
    encoded = model_->Encode(model_in);
  }

  const int64_t rows = encoded.timestamp.size(0);
  Tensor features = Reshape(
      encoded.timestamp,
      {rows, model_->config().num_patches() * model_->config().d_model});
  const int64_t out_channels = channel_independent_ ? 1 : channels_;
  Tensor prediction =
      Reshape(head_->Forward(features), {rows, horizon_, out_channels});
  // De-normalize with the input window's RevIN statistics so predictions
  // live on the data scale.
  prediction = prediction * encoded.std_dev + encoded.mean;
  if (channel_independent_) {
    prediction = data::FromChannelIndependent(prediction, batch, channels_);
  }
  return prediction;
}

void ForecastingPipeline::Train(const data::ForecastingWindows& train,
                                const DownstreamConfig& config, Rng& rng) {
  TIMEDRL_CHECK_EQ(train.horizon(), horizon_);
  TIMEDRL_CHECK_EQ(train.channels(), channels_);
  const TrainConfig& tc = config.train;
  optim::AdamW optimizer(
      CollectParameters(head_.get(), model_, config.fine_tune_encoder),
      tc.learning_rate, tc.weight_decay);
  data::ForecastingBatchSource batch_source(&train);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = tc.batch_size;
  loader_options.shuffle = true;
  loader_options.prefetch_depth = tc.prefetch_depth;
  data::DataLoader loader(batch_source, loader_options, rng);

  if (config.fine_tune_encoder) {
    model_->Train();
  } else {
    model_->Eval();
  }
  head_->Train();

  data::Batch batch;
  for (int64_t epoch = 0; epoch < tc.epochs; ++epoch) {
    TIMEDRL_TRACE_SCOPE_CAT("forecast/epoch", "train");
    double total = 0.0;
    double grad_norm_sum = 0.0;
    int64_t steps = 0;
    loader.Reset();
    while (loader.Next(&batch)) {
      TIMEDRL_TRACE_SCOPE_CAT("forecast/step", "train");
      Tensor prediction = Predict(batch.x, config.fine_tune_encoder);
      Tensor loss = MseLoss(prediction, batch.y);
      optimizer.ZeroGrad();
      loss.Backward();
      const float grad_norm =
          optim::ClipGradNorm(optimizer.parameters(), tc.clip_norm);
      optimizer.Step();
      total += loss.item();
      grad_norm_sum += grad_norm;
      ReportStep(tc, epoch, steps, batch.size(), loss.item(), grad_norm);
      ++steps;
    }
    ReportEpoch(tc, "forecast head", "mse", epoch, steps, total / steps,
                grad_norm_sum / steps);
  }
  model_->Eval();
  head_->Eval();
}

ForecastMetrics ForecastingPipeline::Evaluate(
    const data::ForecastingWindows& test) {
  model_->Eval();
  head_->Eval();
  NoGradGuard guard;

  double squared = 0.0;
  double absolute = 0.0;
  int64_t count = 0;
  Rng throwaway(0);
  data::ForecastingBatchSource batch_source(&test);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = 64;
  data::DataLoader loader(batch_source, loader_options, throwaway);
  data::Batch batch;
  while (loader.Next(&batch)) {
    Tensor prediction = Predict(batch.x, /*with_grad=*/false);
    const std::vector<float>& p = prediction.data();
    const std::vector<float>& t = batch.y.data();
    for (size_t i = 0; i < p.size(); ++i) {
      const double d = double{p[i]} - double{t[i]};
      squared += d * d;
      absolute += std::abs(d);
    }
    count += static_cast<int64_t>(p.size());
  }
  TIMEDRL_CHECK_GT(count, 0) << "empty test set";
  return {squared / count, absolute / count};
}

// ---- ClassificationPipeline --------------------------------------------------------

ClassificationPipeline::ClassificationPipeline(TimeDrlModel* model,
                                               int64_t num_classes,
                                               Pooling pooling, Rng& rng)
    : model_(model), num_classes_(num_classes), pooling_(pooling) {
  TIMEDRL_CHECK(model != nullptr);
  head_ = std::make_unique<nn::Linear>(model->PooledDim(pooling), num_classes,
                                       rng);
}

Tensor ClassificationPipeline::Logits(const Tensor& x, bool with_grad) {
  TimeDrlModel::Encoded encoded;
  Tensor pooled;
  if (with_grad) {
    encoded = model_->Encode(x);
    pooled = model_->PooledInstance(encoded, pooling_);
  } else {
    NoGradGuard guard;
    encoded = model_->Encode(x);
    pooled = model_->PooledInstance(encoded, pooling_);
  }
  return head_->Forward(pooled);
}

void ClassificationPipeline::Train(const data::ClassificationDataset& train,
                                   const DownstreamConfig& config, Rng& rng) {
  TIMEDRL_CHECK_EQ(train.num_classes, num_classes_);
  const TrainConfig& tc = config.train;
  optim::AdamW optimizer(
      CollectParameters(head_.get(), model_, config.fine_tune_encoder),
      tc.learning_rate, tc.weight_decay);
  data::ClassificationBatchSource batch_source(&train);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = tc.batch_size;
  loader_options.shuffle = true;
  loader_options.prefetch_depth = tc.prefetch_depth;
  data::DataLoader loader(batch_source, loader_options, rng);

  if (config.fine_tune_encoder) {
    model_->Train();
  } else {
    model_->Eval();
  }
  head_->Train();

  data::Batch batch;
  for (int64_t epoch = 0; epoch < tc.epochs; ++epoch) {
    TIMEDRL_TRACE_SCOPE_CAT("classify/epoch", "train");
    double total = 0.0;
    double grad_norm_sum = 0.0;
    int64_t steps = 0;
    loader.Reset();
    while (loader.Next(&batch)) {
      TIMEDRL_TRACE_SCOPE_CAT("classify/step", "train");
      Tensor loss = CrossEntropy(Logits(batch.x, config.fine_tune_encoder),
                                 batch.labels);
      optimizer.ZeroGrad();
      loss.Backward();
      const float grad_norm =
          optim::ClipGradNorm(optimizer.parameters(), tc.clip_norm);
      optimizer.Step();
      total += loss.item();
      grad_norm_sum += grad_norm;
      ReportStep(tc, epoch, steps, batch.size(), loss.item(), grad_norm);
      ++steps;
    }
    ReportEpoch(tc, "classify head", "ce", epoch, steps, total / steps,
                grad_norm_sum / steps);
  }
  model_->Eval();
  head_->Eval();
}

std::vector<int64_t> ClassificationPipeline::Predict(
    const data::ClassificationDataset& dataset) {
  model_->Eval();
  head_->Eval();
  NoGradGuard guard;
  std::vector<int64_t> predictions;
  predictions.reserve(dataset.size());
  Rng throwaway(0);
  data::ClassificationBatchSource batch_source(&dataset);
  data::DataLoaderOptions loader_options;
  loader_options.batch_size = 64;
  data::DataLoader loader(batch_source, loader_options, throwaway);
  data::Batch batch;
  while (loader.Next(&batch)) {
    Tensor logits = Logits(batch.x, /*with_grad=*/false);
    std::vector<int64_t> batch_predictions = ArgMax(logits, 1);
    predictions.insert(predictions.end(), batch_predictions.begin(),
                       batch_predictions.end());
  }
  return predictions;
}

ClassificationMetrics ClassificationPipeline::Evaluate(
    const data::ClassificationDataset& test) {
  const std::vector<int64_t> predictions = Predict(test);
  ClassificationMetrics result;
  result.accuracy = metrics::Accuracy(predictions, test.labels);
  result.macro_f1 = metrics::MacroF1(predictions, test.labels, num_classes_);
  result.kappa = metrics::CohenKappa(predictions, test.labels, num_classes_);
  return result;
}

}  // namespace timedrl::core
