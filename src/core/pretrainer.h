// Self-supervised pre-training loop for TimeDRL.

#ifndef TIMEDRL_CORE_PRETRAINER_H_
#define TIMEDRL_CORE_PRETRAINER_H_

#include <vector>

#include "augment/augment.h"
#include "core/model.h"
#include "core/sources.h"
#include "core/train_config.h"
#include "util/rng.h"

namespace timedrl::core {

/// Pre-training hyperparameters. The paper uses AdamW with weight decay.
/// Loop hyperparameters (epochs, batch size, optimizer, observer) live in
/// the embedded TrainConfig: `config.train.epochs = 20;` etc.
struct PretrainConfig {
  TrainConfig train;
  /// Augmentation applied to raw windows before the model — kNone for
  /// TimeDRL proper; other kinds exist only for the Table VI ablation.
  augment::Kind augmentation = augment::Kind::kNone;
  augment::AugmentConfig augment_config;
};

/// Per-epoch averages of the pretext losses.
struct PretrainHistory {
  std::vector<double> total;
  std::vector<double> predictive;
  std::vector<double> contrastive;
};

/// Runs TimeDRL pre-training on unlabeled windows; the model ends in eval
/// mode. Deterministic given `rng`.
PretrainHistory Pretrain(TimeDrlModel* model,
                         const UnlabeledWindowSource& source,
                         const PretrainConfig& config, Rng& rng);

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_PRETRAINER_H_
