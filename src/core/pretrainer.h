// Self-supervised pre-training loop for TimeDRL.

#ifndef TIMEDRL_CORE_PRETRAINER_H_
#define TIMEDRL_CORE_PRETRAINER_H_

#include <string>
#include <vector>

#include "augment/augment.h"
#include "core/model.h"
#include "core/sources.h"
#include "core/train_config.h"
#include "util/rng.h"

namespace timedrl::core {

/// Pre-training hyperparameters. The paper uses AdamW with weight decay.
/// Loop hyperparameters (epochs, batch size, optimizer, observer) live in
/// the embedded TrainConfig: `config.train.epochs = 20;` etc.
struct PretrainConfig {
  TrainConfig train;
  /// Augmentation applied to raw windows before the model — kNone for
  /// TimeDRL proper; other kinds exist only for the Table VI ablation.
  augment::Kind augmentation = augment::Kind::kNone;
  augment::AugmentConfig augment_config;
};

/// Per-epoch averages of the pretext losses, plus the structured outcome of
/// the anomaly guard: when the guard exhausts its rollback budget the run
/// stops early with `aborted` set instead of crashing, and the history holds
/// the epochs that did complete.
struct PretrainHistory {
  std::vector<double> total;
  std::vector<double> predictive;
  std::vector<double> contrastive;
  bool aborted = false;
  std::string abort_reason;
};

/// Runs TimeDRL pre-training on unlabeled windows; the model ends in eval
/// mode. Deterministic given `rng`.
///
/// Fault tolerance (config.train.checkpoint / config.train.anomaly):
/// with a checkpoint directory configured, a full training checkpoint —
/// model, optimizer moments, every RNG stream, epoch cursor, and history —
/// is written crash-consistently after each epoch, and `resume = true`
/// restarts from the newest valid one, replaying the uninterrupted run
/// bitwise-identically. Non-finite losses or gradient norms skip the step;
/// persistent streaks roll back to the last checkpoint with a reduced
/// learning rate, then abort with a structured reason (see
/// core/anomaly_guard.h).
PretrainHistory Pretrain(TimeDrlModel* model,
                         const UnlabeledWindowSource& source,
                         const PretrainConfig& config, Rng& rng);

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_PRETRAINER_H_
