// Crash-consistent training checkpoints with retention and resume.
//
// A version-2 checkpoint captures everything a training loop needs to
// resume bitwise-identically to an uninterrupted run:
//
//   magic "TDRL" | uint32 version=2
//   [model parameters]     nn::WriteParametersBody
//   [model mutable state]  nn::WriteMutableStateBody (dropout RNGs,
//                          batch-norm running stats, init flags)
//   [loop RNG streams]     uint64 count | repeated: name | state text
//   [optimizer]            type string | int64 step_count |
//                          uint64 num_slots | repeated: uint64 n | float[n]
//   [cursor]               int64 epoch (next to run) | int64 global_step |
//                          float learning_rate
//   [history]              uint32 count | repeated: name | uint64 n | f64[n]
//   uint32 CRC-32 of every preceding byte
//
// Writes go through a temp file + fsync + atomic rename, so a crash leaves
// either the previous checkpoint or the new one — never a half-written
// file under the final name. A torn tail that does reach the final name
// (e.g. fsync-less filesystems, injected faults) fails the CRC footer and
// LoadLatest falls back to the previous valid checkpoint.

#ifndef TIMEDRL_CORE_CHECKPOINT_H_
#define TIMEDRL_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/loader.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "optim/optimizer.h"
#include "tensor/shape.h"
#include "util/status.h"

namespace timedrl::core {

/// Names of the data-loader RNG streams inside a checkpoint's rng_streams
/// section. Chosen when the loop owned two loose streams ("loop.batches" =
/// shuffle order, "loop.augment" = augmentation); kept verbatim so v2
/// checkpoints written before the DataLoader existed still resume.
inline constexpr char kLoaderShuffleRngName[] = "loop.batches";
inline constexpr char kLoaderAugmentRngName[] = "loop.augment";

/// Loop-level state stored next to the model in a v2 checkpoint.
struct TrainingState {
  /// Next epoch index to run (a checkpoint written after epoch e completes
  /// stores e + 1).
  int64_t epoch = 0;
  int64_t global_step = 0;
  /// Current learning rate (may differ from the configured one after
  /// anomaly-guard backoff).
  float learning_rate = 0.0f;
  optim::OptimizerState optimizer;
  /// Serialized loop RNG streams by name (the data loader's shuffle and
  /// augmentation streams; see the constants above).
  std::vector<std::pair<std::string, std::string>> rng_streams;
  /// Per-epoch metric series by name (e.g. pretrain loss components).
  std::vector<std::pair<std::string, std::vector<double>>> history;

  /// Stores a DataLoader snapshot in rng_streams (replacing any previous
  /// loader entries).
  void SetLoaderState(const data::DataLoader::State& loader);

  /// Extracts a DataLoader snapshot from rng_streams. False when either
  /// stream is missing (e.g. a state populated by hand).
  bool GetLoaderState(data::DataLoader::State* loader) const;
};

/// Header/footer summary of a checkpoint file, for `checkpoint-inspect`.
struct CheckpointInfo {
  uint32_t version = 0;
  bool has_crc = false;    // v1 files carry no footer
  bool crc_valid = false;  // meaningful only when has_crc
  uint64_t file_bytes = 0;
  std::vector<std::pair<std::string, Shape>> parameters;
  std::string optimizer_type;  // empty for v1
  int64_t optimizer_step_count = 0;
  std::vector<uint64_t> optimizer_slot_sizes;
  int64_t epoch = -1;  // -1 for v1 (no cursor)
  int64_t global_step = -1;
  float learning_rate = 0.0f;
  std::vector<std::pair<std::string, uint64_t>> history_sizes;
};

/// Writes, restores, lists, and prunes `checkpoint-<epoch>.tdrl` files in
/// one directory.
class CheckpointManager {
 public:
  /// Creates `directory` if needed. Keeps at most `keep_last` checkpoints
  /// (older files are deleted after each successful Save); 0 or negative
  /// disables pruning.
  explicit CheckpointManager(std::string directory, int64_t keep_last = 3);

  const std::string& directory() const { return directory_; }

  /// Atomically writes `checkpoint-<state.epoch>.tdrl`, then prunes.
  /// Fault point "truncate_checkpoint" (TIMEDRL_FAULT_INJECT) simulates a
  /// torn write by truncating the payload before the rename.
  Status Save(const nn::Module& model, const TrainingState& state);

  /// Restores the newest checkpoint that passes validation. Files with a
  /// bad CRC or truncated tail are skipped with a warning, falling back to
  /// older ones. kNotFound when no valid checkpoint exists.
  Status LoadLatest(nn::Module* model, TrainingState* state) const;

  /// Restores one specific file (v2 full state; v1 restores parameters
  /// only and leaves `state` untouched).
  static Status LoadFile(const std::string& path, nn::Module* model,
                         TrainingState* state);

  /// Summarizes a checkpoint file without needing a module.
  static Status Inspect(const std::string& path, CheckpointInfo* info);

  /// Existing checkpoint paths, oldest epoch first.
  std::vector<std::string> ListCheckpoints() const;

 private:
  std::string directory_;
  int64_t keep_last_;
};

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_CHECKPOINT_H_
