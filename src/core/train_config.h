// Hyperparameters shared by every training loop (pre-training, downstream
// heads, baselines), plus the progress observer. Extracted from the old
// PretrainConfig/DownstreamConfig duplicates so new loops configure one
// struct and pick up observability for free.

#ifndef TIMEDRL_CORE_TRAIN_CONFIG_H_
#define TIMEDRL_CORE_TRAIN_CONFIG_H_

#include <cstdint>

#include "obs/observer.h"

namespace timedrl::core {

struct TrainConfig {
  int64_t epochs = 10;
  int64_t batch_size = 32;
  float learning_rate = 1e-3f;
  float weight_decay = 1e-4f;
  /// Global gradient-norm clip applied before each optimizer step.
  float clip_norm = 5.0f;
  /// Progress sink (not owned; must outlive the loop). nullptr = silent;
  /// obs::ConsoleObserver restores the old `verbose=true` log lines.
  obs::TrainObserver* observer = nullptr;
};

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_TRAIN_CONFIG_H_
