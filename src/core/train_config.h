// Hyperparameters shared by every training loop (pre-training, downstream
// heads, baselines), plus the progress observer. Extracted from the old
// PretrainConfig/DownstreamConfig duplicates so new loops configure one
// struct and pick up observability for free.

#ifndef TIMEDRL_CORE_TRAIN_CONFIG_H_
#define TIMEDRL_CORE_TRAIN_CONFIG_H_

#include <cstdint>
#include <string>

#include "obs/observer.h"

namespace timedrl::core {

/// Fault-tolerance: periodic full training checkpoints (core/checkpoint.h).
/// Disabled unless `directory` is set.
struct CheckpointConfig {
  /// Where checkpoint files live; empty disables checkpointing entirely.
  std::string directory;
  /// Save after every N completed epochs (the final epoch always saves).
  int64_t every_epochs = 1;
  /// Retention: keep this many newest checkpoints; <= 0 keeps all.
  int64_t keep_last = 3;
  /// Restore the newest valid checkpoint in `directory` before training.
  /// Resuming replays the uninterrupted run bitwise-identically.
  bool resume = false;
};

/// Fault-tolerance: NaN/Inf step policy (core/anomaly_guard.h).
struct AnomalyGuardConfig {
  bool enabled = true;
  /// Skip streak length that triggers a rollback (K).
  int64_t max_consecutive_skips = 3;
  /// Rollbacks allowed before a structured abort (M).
  int64_t max_rollbacks = 2;
  /// Learning-rate multiplier applied at each rollback.
  float lr_backoff = 0.5f;
};

struct TrainConfig {
  int64_t epochs = 10;
  int64_t batch_size = 32;
  float learning_rate = 1e-3f;
  float weight_decay = 1e-4f;
  /// Global gradient-norm clip applied before each optimizer step.
  float clip_norm = 5.0f;
  /// Batches the data pipeline assembles ahead of the compute loop
  /// (data::DataLoader). 0 = synchronous; < 0 = read TIMEDRL_PREFETCH_DEPTH
  /// (default 2). Any depth produces bitwise-identical results.
  int64_t prefetch_depth = -1;
  /// Progress sink (not owned; must outlive the loop). nullptr = silent;
  /// obs::ConsoleObserver restores the old `verbose=true` log lines.
  obs::TrainObserver* observer = nullptr;
  CheckpointConfig checkpoint;
  AnomalyGuardConfig anomaly;
};

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_TRAIN_CONFIG_H_
