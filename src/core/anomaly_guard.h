// Numerical anomaly policy for training loops.
//
// Each step the loop reports its loss tensor and post-clip gradient norm.
// The guard classifies the step:
//
//   kProceed   all values finite — apply the optimizer step.
//   kSkip      NaN/Inf observed — zero gradients, do NOT step, and keep
//              going. Up to `max_consecutive_skips - 1` steps in a row may
//              be skipped this way; any finite step resets the streak.
//   kRollback  the streak reached `max_consecutive_skips` — restore the
//              last checkpoint and retry with the learning rate multiplied
//              by `lr_backoff`. At most `max_rollbacks` rollbacks per run.
//   kAbort     the streak hit the limit again after exhausting rollbacks —
//              stop training with a structured reason (no crash).
//
// Every transition increments a `train.anomaly.*` metric so the episode is
// visible in the metrics registry without scraping logs.

#ifndef TIMEDRL_CORE_ANOMALY_GUARD_H_
#define TIMEDRL_CORE_ANOMALY_GUARD_H_

#include <cstdint>
#include <string>

#include "core/train_config.h"
#include "tensor/tensor.h"

namespace timedrl::core {

class AnomalyGuard {
 public:
  enum class Action { kProceed, kSkip, kRollback, kAbort };

  explicit AnomalyGuard(const AnomalyGuardConfig& config);

  /// Classifies one training step. The loss tensor is scanned with the
  /// parallel CountNonFinite kernel (catches NaN and ±Inf anywhere in it);
  /// `grad_norm` is the value returned by ClipGradNorm, which is non-finite
  /// whenever any gradient element is.
  Action Check(const Tensor& loss, float grad_norm);

  /// Scalar-value variant for loops that already extracted the loss.
  Action CheckValues(double loss, float grad_norm);

  /// The loop must call this after it actually performed the rollback a
  /// kRollback verdict asked for; resets the skip streak and consumes one
  /// rollback budget slot.
  void OnRollback();

  int64_t consecutive_skips() const { return consecutive_skips_; }
  int64_t rollbacks() const { return rollbacks_; }

  /// Human-readable cause for a kAbort verdict (empty otherwise).
  const std::string& abort_reason() const { return abort_reason_; }

 private:
  AnomalyGuardConfig config_;
  int64_t consecutive_skips_ = 0;
  int64_t rollbacks_ = 0;
  std::string abort_reason_;
};

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_ANOMALY_GUARD_H_
