// TimeDRL model/training configuration.

#ifndef TIMEDRL_CORE_CONFIG_H_
#define TIMEDRL_CORE_CONFIG_H_

#include <cstdint>

#include "nn/backbone.h"

namespace timedrl::core {

/// How an instance-level embedding is derived from the encoder output.
/// kCls is TimeDRL's choice; the others reproduce the Table VII ablation.
enum class Pooling {
  kCls,   // dedicated [CLS] token (ours)
  kLast,  // last timestamp embedding
  kGap,   // global average pooling over timestamp embeddings
  kAll,   // flatten all timestamp embeddings
};

/// Hyperparameters of the TimeDRL model and its two pretext tasks.
struct TimeDrlConfig {
  // ---- Input geometry ----
  /// Channels of the raw input windows (1 under channel independence).
  int64_t input_channels = 1;
  /// Timesteps per input window.
  int64_t input_length = 64;

  // ---- Patching (PatchTST-style) ----
  int64_t patch_length = 8;
  int64_t patch_stride = 8;

  // ---- Encoder ----
  nn::BackboneKind backbone = nn::BackboneKind::kTransformerEncoder;
  int64_t d_model = 64;
  int64_t num_heads = 4;
  int64_t ff_dim = 128;
  int64_t num_layers = 2;
  float dropout = 0.1f;

  // ---- Pretext tasks ----
  /// λ in L = L_P + λ·L_C (paper Eq. 19).
  float lambda_weight = 1.0f;
  /// Stop-gradient on the target branch of the contrastive task (Table IX
  /// ablation switches this off).
  bool stop_gradient = true;

  /// Token dimensionality fed to the encoder: C·P (paper Eq. 1-2).
  int64_t token_dim() const { return input_channels * patch_length; }

  /// Number of patch tokens T_p.
  int64_t num_patches() const {
    return (input_length - patch_length) / patch_stride + 1;
  }
};

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_CONFIG_H_
