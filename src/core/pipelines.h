// Downstream task pipelines: linear evaluation and semi-supervised
// fine-tuning for forecasting and classification (paper Sections V-A/B/C).

#ifndef TIMEDRL_CORE_PIPELINES_H_
#define TIMEDRL_CORE_PIPELINES_H_

#include <memory>
#include <vector>

#include "core/model.h"
#include "core/train_config.h"
#include "data/time_series.h"
#include "data/windows.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace timedrl::core {

/// Hyperparameters shared by downstream training loops. Loop
/// hyperparameters live in the embedded TrainConfig (downstream heads
/// default to no weight decay, the linear-evaluation protocol).
struct DownstreamConfig {
  DownstreamConfig() { train.weight_decay = 0.0f; }
  TrainConfig train;
  /// false = linear evaluation (frozen encoder); true = fine-tuning
  /// (encoder updated jointly with the head, as in Fig. 5).
  bool fine_tune_encoder = false;
};

struct ForecastMetrics {
  double mse = 0.0;
  double mae = 0.0;
};

struct ClassificationMetrics {
  double accuracy = 0.0;
  double macro_f1 = 0.0;
  double kappa = 0.0;
};

/// Forecasting head + training/eval around a TimeDRL encoder.
///
/// The head is a single linear layer on flattened timestamp-level embeddings
/// (the paper's linear evaluation protocol). Under channel independence the
/// same head maps each univariate channel's embeddings to its own horizon,
/// and predictions are de-normalized with the window's RevIN statistics.
class ForecastingPipeline {
 public:
  /// `channels` is the raw channel count of the data; `channel_independent`
  /// selects the PatchTST-style univariate decomposition (the model must
  /// have input_channels == 1 in that case, == channels otherwise).
  ForecastingPipeline(TimeDrlModel* model, int64_t horizon, int64_t channels,
                      bool channel_independent, Rng& rng);

  /// Trains the head (and optionally the encoder) on `train`.
  void Train(const data::ForecastingWindows& train,
             const DownstreamConfig& config, Rng& rng);

  /// MSE/MAE over every window of `test` (paper Eq. 20-21).
  ForecastMetrics Evaluate(const data::ForecastingWindows& test);

  /// Predictions for one raw batch x [B, L, C] -> [B, H, C].
  Tensor Predict(const Tensor& x, bool with_grad);

 private:
  TimeDrlModel* model_;
  int64_t horizon_;
  int64_t channels_;
  bool channel_independent_;
  std::unique_ptr<nn::Linear> head_;
};

/// Classification head + training/eval around a TimeDRL encoder. The head is
/// a single linear layer on the pooled instance-level embedding.
class ClassificationPipeline {
 public:
  ClassificationPipeline(TimeDrlModel* model, int64_t num_classes,
                         Pooling pooling, Rng& rng);

  void Train(const data::ClassificationDataset& train,
             const DownstreamConfig& config, Rng& rng);

  ClassificationMetrics Evaluate(const data::ClassificationDataset& test);

  /// Class logits for a raw batch x [B, T, C].
  Tensor Logits(const Tensor& x, bool with_grad);

  /// Argmax predictions for a dataset.
  std::vector<int64_t> Predict(const data::ClassificationDataset& dataset);

 private:
  TimeDrlModel* model_;
  int64_t num_classes_;
  Pooling pooling_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace timedrl::core

#endif  // TIMEDRL_CORE_PIPELINES_H_
